//! §6.2 — colliding with kernel addresses: brute force, collision
//! collection, and recovery of the cross-privilege BTB functions
//! (**Figure 7**).
//!
//! The paper's procedure: allocate a kernel address `K` (a kernel-module
//! function of nops + return), make it observable, then find user
//! addresses whose BTB entries serve predictions at `K`. Brute-forcing
//! bit-flip patterns fails on Zen 3 (every function folds `b47`, so a
//! collision needs 13+ coordinated flips); generating *random* colliding
//! addresses and solving for consistent XOR functions succeeds. We
//! replace the paper's Z3 with GF(2) elimination (`phantom-gf2`), which
//! is exact for XOR-linear functions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_bpu::{Btb, BtbScheme};
use phantom_gf2::{recover_functions, RecoveredFunction, RecoveryConfig};
use phantom_isa::BranchKind;
use phantom_mem::{PrivilegeLevel, VirtAddr};

/// A behavioural collision oracle: "does training a branch at `user`
/// make the predictor serve it at `kernel`?" — what the paper measures
/// with performance counters and timing, per candidate.
pub trait CollisionOracle {
    /// Test one (user, kernel) address pair.
    fn collides(&mut self, user: VirtAddr, kernel: VirtAddr) -> bool;
}

/// A fast oracle over a bare BTB: train-at-user then lookup-at-kernel,
/// resetting the structure each trial. Behaviourally identical to the
/// full-system probe but orders of magnitude faster, which matters
/// because random collisions occur at rate `2^-12`.
#[derive(Debug)]
pub struct BtbOracle {
    btb: Btb,
}

impl BtbOracle {
    /// Oracle over the given BTB scheme.
    pub fn new(scheme: BtbScheme) -> BtbOracle {
        BtbOracle {
            btb: Btb::new(scheme),
        }
    }
}

impl CollisionOracle for BtbOracle {
    fn collides(&mut self, user: VirtAddr, kernel: VirtAddr) -> bool {
        self.btb.flush();
        self.btb.train(
            user,
            BranchKind::Indirect,
            VirtAddr::new(0x30_0000),
            PrivilegeLevel::User,
            0,
        );
        self.btb.lookup(kernel).is_some()
    }
}

/// Outcome of the brute-force search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BruteForceOutcome {
    /// Patterns (XOR masks over bits 12–47 plus the canonical high bits)
    /// that produced collisions.
    pub patterns: Vec<u64>,
    /// How many candidate patterns were tested.
    pub tested: u64,
}

/// Brute force §6.2-style: flip up to `max_flips` bits of `K` (among
/// bits 12–46, always flipping `b47` and the sign-extension bits to land
/// in user space) and test each pattern. On Zen 3/4 this fails for small
/// `max_flips` — every fold function involves `b47`, so clearing it
/// disturbs all twelve functions at once.
pub fn brute_force(
    oracle: &mut dyn CollisionOracle,
    kernel: VirtAddr,
    max_flips: u32,
) -> BruteForceOutcome {
    // Flipping into user space: clear bits 63..47.
    let to_user = 0xffff_8000_0000_0000u64 & kernel.raw();
    let mut patterns = Vec::new();
    let mut tested = 0;

    // Enumerate subsets of bits 12..=46 with |S| <= max_flips.
    let bits: Vec<u32> = (12..47).collect();
    let mut stack: Vec<(usize, u64, u32)> = vec![(0, 0, 0)];
    while let Some((idx, mask, used)) = stack.pop() {
        let pattern = to_user | mask;
        tested += 1;
        if oracle.collides(VirtAddr::new(kernel.raw() ^ pattern), kernel) {
            patterns.push(pattern);
        }
        if used < max_flips {
            for (i, &b) in bits.iter().enumerate().skip(idx) {
                stack.push((i + 1, mask | (1 << b), used + 1));
            }
        }
    }
    BruteForceOutcome { patterns, tested }
}

/// Collect `count` random user-space addresses that collide with `K`,
/// keeping the low 12 bits equal to `K`'s (the paper shrinks the search
/// space the same way). Randomizes bits 12–46.
pub fn collect_collisions(
    oracle: &mut dyn CollisionOracle,
    kernel: VirtAddr,
    count: usize,
    seed: u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let low12 = kernel.raw() & 0xfff;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let random_mid: u64 = rng.gen::<u64>() & 0x0000_7fff_ffff_f000;
        let candidate = VirtAddr::new(random_mid | low12);
        if oracle.collides(candidate, kernel) {
            out.push(candidate.raw());
        }
    }
    out
}

/// The full Figure 7 reproduction: collisions against several kernel
/// addresses, solved into a bounded-weight basis of XOR functions.
#[derive(Debug, Clone)]
pub struct Figure7 {
    /// The recovered functions (weight ≤ 4, like the paper's `n = 4`).
    pub functions: Vec<RecoveredFunction>,
    /// Collision samples used per kernel address.
    pub samples_per_address: usize,
    /// The two XOR collision patterns the paper publishes
    /// (`0xffffbff800000000` and `0xffff8003ff800000`), re-validated
    /// against the recovered functions.
    pub paper_patterns_hold: bool,
}

/// Recover the Zen 3/4 cross-privilege BTB functions from behavioural
/// collisions only.
pub fn recover_figure7(
    oracle: &mut dyn CollisionOracle,
    kernel_addresses: &[VirtAddr],
    samples_per_address: usize,
    seed: u64,
) -> Figure7 {
    let collisions: Vec<(u64, Vec<u64>)> = kernel_addresses
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            (
                k.raw(),
                collect_collisions(oracle, k, samples_per_address, seed ^ i as u64),
            )
        })
        .collect();
    let functions = recover_functions(&collisions, RecoveryConfig::default());

    // §6.2's sanity check: the two published patterns must preserve every
    // recovered function.
    let paper_patterns_hold = [0xffff_bff8_0000_0000u64, 0xffff_8003_ff80_0000]
        .iter()
        .all(|&p| functions.iter().all(|f| f.eval(p) == 0));

    Figure7 {
        functions,
        samples_per_address,
        paper_patterns_hold,
    }
}

/// Derive a usable user⇄kernel XOR pattern from recovered functions: a
/// pattern that flips `b47` (and the canonical upper bits) while keeping
/// every function's parity — what the exploits use to choose training
/// addresses ("to create collisions, we use the higher bits").
pub fn collision_pattern(functions: &[RecoveredFunction]) -> Option<u64> {
    let mut pattern: u64 = 0xffff_8000_0000_0000;
    for _ in 0..64 {
        let violated: Vec<&RecoveredFunction> =
            functions.iter().filter(|f| f.eval(pattern) == 1).collect();
        if violated.is_empty() {
            return Some(pattern);
        }
        let f = violated[0];
        let bit = f
            .bits()
            .into_iter()
            .find(|&b| b < 47 && pattern >> b & 1 == 0)?;
        pattern |= 1 << bit;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: u64 = 0xffff_ffff_8124_6ac0;

    #[test]
    fn brute_force_fails_on_zen34_small_budgets() {
        // The paper: "this approach does not yield any results … when
        // flipping up to 6 bits". Exhausting 6 flips over 35 bits is
        // ~2M oracle calls; 3 flips (~7k) already demonstrates the
        // structural point — every fold involves b47.
        let mut oracle = BtbOracle::new(BtbScheme::zen34());
        let out = brute_force(&mut oracle, VirtAddr::new(K), 3);
        assert!(
            out.patterns.is_empty(),
            "no small collision pattern on Zen 3"
        );
        assert!(out.tested > 7000);
    }

    #[test]
    fn brute_force_succeeds_on_zen12() {
        // On Zen 1/2 nothing above bit 35 is folded: flipping only the
        // high bits (zero extra flips) already collides — why Retbleed
        // worked there.
        let mut oracle = BtbOracle::new(BtbScheme::zen12());
        let out = brute_force(&mut oracle, VirtAddr::new(K), 0);
        assert_eq!(out.patterns.len(), 1);
    }

    #[test]
    fn random_collisions_occur_and_verify() {
        let mut oracle = BtbOracle::new(BtbScheme::zen34());
        let got = collect_collisions(&mut oracle, VirtAddr::new(K), 4, 7);
        assert_eq!(got.len(), 4);
        for &u in &got {
            assert!(!VirtAddr::new(u).is_kernel_half());
            assert_eq!(u & 0xfff, K & 0xfff);
            assert!(oracle.collides(VirtAddr::new(u), VirtAddr::new(K)));
        }
    }

    #[test]
    fn figure7_recovery_matches_ground_truth() {
        let mut oracle = BtbOracle::new(BtbScheme::zen34());
        let ks = [VirtAddr::new(K), VirtAddr::new(0xffff_ffff_9230_0ac0)];
        let fig7 = recover_figure7(&mut oracle, &ks, 24, 11);
        assert_eq!(fig7.functions.len(), 12, "rank-12 family");
        assert!(fig7.paper_patterns_hold);
        // Every recovered function lies in the planted Figure 7 span.
        let truth = phantom_bpu::FoldFamily::zen34();
        let truth_matrix = phantom_gf2::BitMatrix::from_rows(
            48,
            &truth.fns().iter().map(|f| f.mask).collect::<Vec<_>>(),
        );
        for f in &fig7.functions {
            assert!(truth_matrix.in_row_space(f.mask), "{f}");
        }
    }

    #[test]
    fn derived_pattern_actually_collides() {
        let mut oracle = BtbOracle::new(BtbScheme::zen34());
        let fig7 = recover_figure7(&mut oracle, &[VirtAddr::new(K)], 30, 3);
        let pattern = collision_pattern(&fig7.functions).expect("pattern exists");
        let user = VirtAddr::new(K ^ pattern);
        assert!(!user.is_kernel_half());
        assert!(
            oracle.collides(user, VirtAddr::new(K)),
            "pattern {pattern:#x}"
        );
    }
}
