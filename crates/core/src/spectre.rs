//! The baseline: conventional Spectre — what the paper positions PHANTOM
//! against.
//!
//! A conventional Spectre-V2 attack (§2.3) hijacks an *execute-dependent*
//! branch: the BTB steers an indirect branch to a disclosure gadget, and
//! the wide backend-resteer window executes **two dependent loads** —
//! fetch the secret, then touch a secret-indexed cache line. This module
//! implements that baseline end-to-end and the comparisons the paper
//! draws:
//!
//! * both window classes measured side by side
//!   ([`window_comparison`]): backend windows fit tens of µops, frontend
//!   (phantom) windows fit at most a handful;
//! * conventional Spectre works on **every** microarchitecture — its
//!   window is backend-resteered — while phantom execution is Zen 1/2
//!   only;
//! * a *single-load* (MDS) gadget is useless to conventional Spectre but
//!   leakable with PHANTOM's nested steer (§7.4's central claim),
//!   asserted in this module's tests.

use phantom_isa::asm::Assembler;
use phantom_isa::inst::AluOp;
use phantom_isa::{Inst, Reg};
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::{Machine, ResteerKind, TransientWindow, UarchProfile};
use phantom_sidechannel::NoiseModel;

/// Errors from baseline construction.
#[derive(Debug)]
pub struct SpectreError(pub String);

impl std::fmt::Display for SpectreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spectre baseline failed: {}", self.0)
    }
}

impl std::error::Error for SpectreError {}

fn err<E: std::fmt::Display>(e: E) -> SpectreError {
    SpectreError(e.to_string())
}

/// Result of one Spectre-V2 leak attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectreLeak {
    /// The byte the cache channel recovered, if any line lit up.
    pub leaked: Option<u8>,
    /// The planted secret byte (scoring).
    pub secret: u8,
}

impl SpectreLeak {
    /// Whether the attack recovered the secret exactly.
    pub fn correct(&self) -> bool {
        self.leaked == Some(self.secret)
    }
}

/// A classic user-space Spectre-V2 leak: train an indirect jump to a
/// two-load disclosure gadget, then run the victim with a different
/// architectural target. The backend window executes
/// `secret = [R6]; touch reload[secret << 6]`, and Flush+Reload on the
/// reload buffer recovers the byte.
///
/// Works on **all** modeled microarchitectures: the misprediction is
/// only detectable at execute, so even Zen 4's fast decoder cannot
/// squash it early.
///
/// # Errors
///
/// Returns [`SpectreError`] on setup failure.
pub fn spectre_v2_leak(profile: UarchProfile, secret: u8) -> Result<SpectreLeak, SpectreError> {
    let mut m = Machine::new(profile, 1 << 24);
    let text = PageFlags::USER_TEXT | PageFlags::WRITE;
    let victim_branch = VirtAddr::new(0x40_0ac0);
    let gadget = VirtAddr::new(0x48_0000);
    let benign = VirtAddr::new(0x4c_0000);
    let secret_addr = VirtAddr::new(0x60_0000);
    let reload = VirtAddr::new(0x62_0000);

    m.map_range(victim_branch.page_base(), 0x1000, text)
        .map_err(err)?;
    m.map_range(benign, 0x1000, text).map_err(err)?;
    m.map_range(secret_addr, 64, PageFlags::USER_DATA)
        .map_err(err)?;
    m.map_range(reload, 256 * 64, PageFlags::USER_DATA)
        .map_err(err)?;
    m.poke_u64(secret_addr, u64::from(secret));

    // The two-load disclosure gadget.
    let mut g = Assembler::new(gadget.raw());
    g.push(Inst::Load {
        dst: Reg::R3,
        base: Reg::R6,
        disp: 0,
    }); // secret
    g.push(Inst::AndImm {
        dst: Reg::R3,
        imm: 0xff,
    });
    g.push(Inst::Shl {
        dst: Reg::R3,
        amount: 6,
    });
    g.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R3,
        src: Reg::R7,
    });
    g.push(Inst::Load {
        dst: Reg::R9,
        base: Reg::R3,
        disp: 0,
    }); // encode
    g.push(Inst::Halt);
    m.load_blob(&g.finish().map_err(err)?, text).map_err(err)?;
    m.poke(benign, &[0xF4]); // hlt

    // Victim: jmp* r11.
    let mut v = Assembler::new(victim_branch.raw());
    v.push(Inst::JmpInd { src: Reg::R11 });
    v.push(Inst::Halt);
    m.load_blob(&v.finish().map_err(err)?, text).map_err(err)?;

    m.set_reg(Reg::R6, secret_addr.raw());
    m.set_reg(Reg::R7, reload.raw());

    // Train: architecturally jump to the gadget once.
    m.set_reg(Reg::R11, gadget.raw());
    m.set_pc(victim_branch);
    m.run(10).map_err(err)?;

    // Arm the reload buffer.
    for b in 0..256u64 {
        phantom_sidechannel::flush(&mut m, reload + (b << 6));
    }

    // Victim run: architectural target is benign, prediction says gadget.
    m.set_reg(Reg::R11, benign.raw());
    m.set_pc(victim_branch);
    m.run(10).map_err(err)?;

    // Flush+Reload scan.
    let mut noise = NoiseModel::quiet(0);
    let threshold = {
        let c = m.caches().config();
        c.l1_latency + c.l2_latency
    };
    let mut leaked = None;
    for b in 0..256u64 {
        let latency = phantom_sidechannel::reload(&mut m, reload + (b << 6), &mut noise);
        if latency <= threshold && leaked.is_none() {
            leaked = Some(b as u8);
        }
    }
    Ok(SpectreLeak { leaked, secret })
}

/// Side-by-side window widths (in µops) for the two resteer classes on
/// one profile — the quantitative version of "PHANTOM speculation
/// windows are short".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowComparison {
    /// µop budget of a backend-resteered (conventional Spectre) window.
    pub spectre_uops: u32,
    /// µop budget of a frontend-resteered (PHANTOM) window.
    pub phantom_uops: u32,
}

impl WindowComparison {
    /// How many times wider the Spectre window is (∞ reported as the
    /// raw quotient against a 1-µop floor).
    pub fn ratio(&self) -> u32 {
        self.spectre_uops / self.phantom_uops.max(1)
    }
}

/// Compare the two window classes on a profile.
pub fn window_comparison(profile: &UarchProfile) -> WindowComparison {
    let spectre = TransientWindow::for_resteer(profile, ResteerKind::Backend);
    let phantom = TransientWindow::for_resteer(profile, ResteerKind::Frontend);
    WindowComparison {
        spectre_uops: spectre.exec_uops,
        phantom_uops: phantom.exec_uops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_kernel::{sysno, System};

    #[test]
    fn spectre_v2_leaks_on_every_microarchitecture() {
        // The baseline needs no phantom execution: backend windows are
        // universal. (On the blind Intel parts the victim jmp* is the
        // suppressed case, so test the non-blind ones.)
        for profile in [
            UarchProfile::zen1(),
            UarchProfile::zen2(),
            UarchProfile::zen3(),
            UarchProfile::zen4(),
            UarchProfile::intel12(),
        ] {
            let name = profile.name.clone();
            let r = spectre_v2_leak(profile, 0xA7).unwrap();
            assert!(r.correct(), "{name}: leaked {:?}", r.leaked);
        }
    }

    #[test]
    fn spectre_windows_dwarf_phantom_windows() {
        for profile in UarchProfile::all() {
            let w = window_comparison(&profile);
            assert!(
                w.spectre_uops >= 40,
                "{}: spectre window {}",
                profile.name,
                w.spectre_uops
            );
            if w.phantom_uops > 0 {
                assert!(w.ratio() >= 6, "{}: ratio {}", profile.name, w.ratio());
            }
        }
    }

    #[test]
    fn single_load_gadget_is_spectre_proof_but_phantom_leakable() {
        // §7.4's central comparison, run against the SAME kernel gadget:
        // conventional Spectre (bounds-check mistraining alone, no
        // injected call-site prediction) leaks nothing from the one-load
        // read_data gadget; adding the nested phantom steer leaks the
        // secret. Zen 2 throughout.
        let physmap_and_buffer = |sys: &mut System| {
            let reload_uva = VirtAddr::new(0x5a00_0000);
            sys.map_user(reload_uva, 256 * 64, PageFlags::USER_DATA)
                .unwrap();
            let pa = sys
                .machine()
                .page_table()
                .translate(
                    reload_uva,
                    phantom_mem::AccessKind::Read,
                    phantom_mem::PrivilegeLevel::User,
                )
                .unwrap();
            (reload_uva, sys.layout().physmap_base() + pa.raw())
        };
        let scan = |sys: &mut System, reload_uva: VirtAddr| -> Option<u8> {
            let mut noise = NoiseModel::quiet(0);
            let c = *sys.machine().caches().config();
            let threshold = c.l1_latency + c.l2_latency;
            let mut hit = None;
            for b in 0..256u64 {
                let latency = phantom_sidechannel::reload(
                    sys.machine_mut(),
                    reload_uva + (b << 6),
                    &mut noise,
                );
                if latency <= threshold && hit.is_none() {
                    hit = Some(b as u8);
                }
            }
            hit
        };

        // --- Conventional Spectre only: train taken, go out of bounds. --
        let mut sys = System::new(UarchProfile::zen2(), 1 << 28, 77).unwrap();
        let (reload_uva, reload_kva) = physmap_and_buffer(&mut sys);
        let index = sys.module().secret - sys.module().array;
        for t in 0..4u64 {
            sys.syscall(sysno::MODULE_READ_DATA, &[t * 4 % 16, reload_kva.raw()])
                .unwrap();
        }
        for b in 0..256u64 {
            phantom_sidechannel::flush(sys.machine_mut(), reload_uva + (b << 6));
        }
        sys.syscall(sysno::MODULE_READ_DATA, &[index, reload_kva.raw()])
            .unwrap();
        assert_eq!(
            scan(&mut sys, reload_uva),
            None,
            "one load cannot encode anything for conventional Spectre"
        );

        // --- Same gadget + the phantom call-site steer: it leaks. -------
        let physmap = sys.layout().physmap_base();
        let r = crate::attacks::leak_kernel_memory(
            &mut sys,
            physmap,
            &crate::attacks::MdsLeakConfig {
                bytes: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.signal);
        assert_eq!(&r.leaked[..4], &sys.secret()[..4]);
    }
}
