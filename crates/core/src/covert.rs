//! §6.4 — covert channels over the P1 (fetch) and P2 (execute)
//! primitives: **Table 2**.
//!
//! The sender encodes each bit in the *choice of injected branch target*:
//! `T1` is a mapped kernel address, `T0` an unmapped one, both selecting
//! the same cache set. The receiver primes the set, invokes the kernel
//! victim, and probes: a slow probe means the phantom path touched the
//! set, i.e. the bit was 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_pipeline::UarchProfile;
use phantom_sidechannel::NoiseModel;

use crate::primitives::{p1_probe, p2_probe, PrimitiveConfig, PrimitiveError};

/// Which primitive carries the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CovertKind {
    /// P1 — transient fetch, observed in the I-cache. All Zen parts.
    Fetch,
    /// P2 — transient data load, observed in the D-cache. Zen 1/2 only.
    Execute,
}

impl std::fmt::Display for CovertKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CovertKind::Fetch => f.write_str("fetch (P1)"),
            CovertKind::Execute => f.write_str("execute (P2)"),
        }
    }
}

/// Configuration of a covert-channel run.
#[derive(Debug, Clone, Copy)]
pub struct CovertConfig {
    /// Number of random bits to transfer (the paper uses 4096).
    pub bits: usize,
    /// RNG seed (bit pattern + measurement noise).
    pub seed: u64,
}

impl Default for CovertConfig {
    fn default() -> CovertConfig {
        CovertConfig { bits: 4096, seed: 0 }
    }
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct CovertResult {
    /// Microarchitecture name.
    pub uarch: &'static str,
    /// Tested part.
    pub model: &'static str,
    /// Channel kind.
    pub kind: CovertKind,
    /// Bits transferred.
    pub bits: usize,
    /// Fraction decoded correctly.
    pub accuracy: f64,
    /// Simulated wall-clock seconds for the whole transfer.
    pub seconds: f64,
    /// Throughput in bits per second.
    pub bits_per_sec: f64,
}

/// Run the fetch (P1) covert channel on one microarchitecture.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel(
    profile: UarchProfile,
    config: CovertConfig,
) -> Result<CovertResult, PrimitiveError> {
    let uarch_salt = profile.name.bytes().map(u64::from).sum::<u64>();
    // Stress the sibling thread to stabilize the signal (§6.4 footnote).
    let noise = NoiseModel::with_smt_stress(config.seed ^ uarch_salt);
    fetch_channel_noisy(profile, config, noise)
}

/// [`fetch_channel`] with an explicit noise model (ablation sweeps).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel_noisy(
    profile: UarchProfile,
    config: CovertConfig,
    mut noise: NoiseModel,
) -> Result<CovertResult, PrimitiveError> {
    let mut sys = System::new(profile, 1 << 30, config.seed ^ 0xc0de)
        .map_err(|e| PrimitiveError(e.to_string()))?;
    let attacker = VirtAddr::new(0x5000_0000);
    let cfg = PrimitiveConfig::for_system(&sys, attacker);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // T1: executable kernel text; T0: the same low bits in an unmapped
    // region. Flipping bit 29 keeps T0 inside the (sparsely occupied)
    // image randomization range for every slot — flipping bit 30 would
    // land slot-0 boots inside the kernel module, which is mapped.
    let t1 = sys.image().base + 0x2000 + 43 * 64;
    let t0 = VirtAddr::new(t1.raw() ^ 0x2000_0000);
    // The victim instruction (covert channels are cooperative: the
    // receiver knows where the kernel speculates).
    let victim = sys.image().listing1_nop;

    let start_cycles = sys.machine().cycles();
    let mut correct = 0usize;
    for _ in 0..config.bits {
        let bit = rng.gen_bool(0.5);
        let target = if bit { t1 } else { t0 };
        let evictions = p1_probe(&mut sys, &cfg, victim, target, &mut noise)?;
        let decoded = evictions > 0;
        if decoded == bit {
            correct += 1;
        }
    }
    let cycles = sys.machine().cycles() - start_cycles;
    let seconds = sys.machine().profile().cycles_to_seconds(cycles);
    Ok(CovertResult {
        uarch: sys.machine().profile().name,
        model: sys.machine().profile().model,
        kind: CovertKind::Fetch,
        bits: config.bits,
        accuracy: correct as f64 / config.bits as f64,
        seconds,
        bits_per_sec: config.bits as f64 / seconds,
    })
}

/// Run the execute (P2) covert channel (meaningful on Zen 1/2).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn execute_channel(
    profile: UarchProfile,
    config: CovertConfig,
) -> Result<CovertResult, PrimitiveError> {
    let uarch_salt = profile.name.bytes().map(u64::from).sum::<u64>();
    let mut sys = System::new(profile, 1 << 30, config.seed ^ exec_seed())
        .map_err(|e| PrimitiveError(e.to_string()))?;
    let attacker = VirtAddr::new(0x5000_0000);
    let cfg = PrimitiveConfig::for_system(&sys, attacker);
    // "Additional sibling thread workloads were unnecessary for the
    // tested parts" — plain realistic noise.
    let mut noise = NoiseModel::realistic(config.seed ^ uarch_salt);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // T1: a mapped physmap address; T0: same low bits, unmapped slot.
    let physmap = sys.layout().physmap_base();
    let t1 = physmap + 0x10_0000 + 29 * 64;
    let t0 = VirtAddr::new(t1.raw() ^ 0x2_0000_0000);
    let (l2c, l3g) = (sys.image().listing2_call, sys.image().listing3_gadget);

    let start_cycles = sys.machine().cycles();
    let mut correct = 0usize;
    for _ in 0..config.bits {
        let bit = rng.gen_bool(0.5);
        let target = if bit { t1 } else { t0 };
        let evictions = p2_probe(&mut sys, &cfg, l2c, l3g, target, &mut noise)?;
        let decoded = evictions > 0;
        if decoded == bit {
            correct += 1;
        }
    }
    let cycles = sys.machine().cycles() - start_cycles;
    let seconds = sys.machine().profile().cycles_to_seconds(cycles);
    Ok(CovertResult {
        uarch: sys.machine().profile().name,
        model: sys.machine().profile().model,
        kind: CovertKind::Execute,
        bits: config.bits,
        accuracy: correct as f64 / config.bits as f64,
        seconds,
        bits_per_sec: config.bits as f64 / seconds,
    })
}

const fn exec_seed() -> u64 {
    0xe8ec
}

/// The full Table 2: fetch rows for all four Zen parts, execute rows
/// for Zen 1/2.
///
/// # Errors
///
/// Returns [`PrimitiveError`] if any row fails.
pub fn table2(config: CovertConfig) -> Result<Vec<CovertResult>, PrimitiveError> {
    let mut rows = Vec::new();
    for p in UarchProfile::amd() {
        rows.push(fetch_channel(p, config)?);
    }
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        rows.push(execute_channel(p, config)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: CovertConfig = CovertConfig { bits: 96, seed: 9 };

    #[test]
    fn fetch_channel_is_accurate_on_all_zen() {
        for p in UarchProfile::amd() {
            let name = p.name;
            let r = fetch_channel(p, SMALL).unwrap();
            assert!(r.accuracy >= 0.85, "{name}: accuracy {}", r.accuracy);
            assert!(r.bits_per_sec > 0.0);
        }
    }

    #[test]
    fn execute_channel_works_on_zen12_not_zen3() {
        for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
            let name = p.name;
            let r = execute_channel(p, SMALL).unwrap();
            assert!(r.accuracy >= 0.85, "{name}: accuracy {}", r.accuracy);
        }
        // On Zen 3 the phantom window never executes: the receiver sees
        // no signal and accuracy collapses to chance.
        let r = execute_channel(UarchProfile::zen3(), SMALL).unwrap();
        assert!(r.accuracy < 0.75, "Zen 3 execute channel is dead: {}", r.accuracy);
    }

    #[test]
    fn fetch_beats_chance_even_with_noise() {
        let r = fetch_channel(UarchProfile::zen2(), CovertConfig { bits: 160, seed: 5 }).unwrap();
        assert!(r.accuracy > 0.8);
        assert_eq!(r.bits, 160);
    }
}
