//! §6.4 — covert channels over the P1 (fetch) and P2 (execute)
//! primitives: **Table 2**.
//!
//! The sender encodes each bit in the *choice of injected branch target*:
//! `T1` is a mapped kernel address, `T0` an unmapped one, both selecting
//! the same cache set. The receiver primes the set, invokes the kernel
//! victim, and probes: a slow probe means the phantom path touched the
//! set, i.e. the bit was 1.
//!
//! Each bit is an independent [`Scenario`] trial: the receiver's machine
//! is rewound to the post-boot snapshot, the bit value and the noise
//! stream derive from the trial seed alone, and the probe casts votes
//! through the adaptive [`decode_adaptive`] decoder. That makes a
//! transfer embarrassingly parallel — and byte-identical at any thread
//! count.
//!
//! Decoding is confidence-driven: a single spurious eviction on a dead
//! set would flip a one-shot 0-bit to 1, so each bit is probed
//! repeatedly — but instead of a fixed vote count, the decoder stops
//! after two unanimous high-margin probes and escalates (up to the
//! schedule bound) only when the early votes tie or sit near the
//! calibrated threshold. Bits that stay tied are reported as
//! abstentions, never coin flips. The total probe cost is reflected
//! honestly in `bits_per_sec`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_pipeline::{Checkpoint, UarchProfile};
use phantom_sidechannel::{NoiseModel, ProbeArena, ProbeLevel};

use crate::decode::{decode_adaptive, Decoded, DecoderConfig};
use crate::primitives::{p1_probe_scored, p2_probe_scored, PrimitiveConfig, PrimitiveError};
use crate::runner::{BootEveryFork, Scenario, ScenarioError, Trial, TrialRunner};

/// Which primitive carries the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CovertKind {
    /// P1 — transient fetch, observed in the I-cache. All Zen parts.
    Fetch,
    /// P2 — transient data load, observed in the D-cache. Zen 1/2 only.
    Execute,
}

impl std::fmt::Display for CovertKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CovertKind::Fetch => f.write_str("fetch (P1)"),
            CovertKind::Execute => f.write_str("execute (P2)"),
        }
    }
}

/// Configuration of a covert-channel run.
#[derive(Debug, Clone, Copy)]
pub struct CovertConfig {
    /// Number of random bits to transfer (the paper uses 4096).
    pub bits: usize,
    /// RNG seed (bit pattern + measurement noise).
    pub seed: u64,
}

impl Default for CovertConfig {
    fn default() -> CovertConfig {
        CovertConfig {
            bits: 4096,
            seed: 0,
        }
    }
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct CovertResult {
    /// Microarchitecture name.
    pub uarch: phantom_pipeline::IStr,
    /// Tested part.
    pub model: phantom_pipeline::IStr,
    /// Channel kind.
    pub kind: CovertKind,
    /// Bits transferred.
    pub bits: usize,
    /// Fraction decoded correctly (abstentions count as wrong).
    pub accuracy: f64,
    /// Simulated wall-clock seconds for the whole transfer.
    pub seconds: f64,
    /// Throughput in bits per second.
    pub bits_per_sec: f64,
    /// Total probes cast across all bits (the decoder's real cost).
    pub probes: u64,
    /// Bits the decoder abstained on (tied through the full schedule).
    pub abstentions: usize,
    /// Mean per-bit decode confidence.
    pub mean_confidence: f64,
}

/// The covert-channel transfer as a trial scenario: one trial per bit.
struct ChannelScenario {
    profile: UarchProfile,
    config: CovertConfig,
    kind: CovertKind,
    /// Noise calibration; each trial reseeds it from its trial seed.
    noise_proto: NoiseModel,
    /// Per-bit vote escalation schedule and confidence floor.
    decoder: DecoderConfig,
}

/// Per-worker receiver state: a booted system plus the rewind point.
///
/// `setup` boots exactly one system; the runner seals it into the
/// scenario checkpoint and every worker forks a clone. The clone
/// shares the boot-time physical frames (and the `Arc`-held rewind
/// point) copy-on-write, so a fork costs pointer bumps — never a
/// reboot — and each trial's dirty frames stay private to its worker.
#[derive(Clone)]
struct ChannelState {
    sys: System,
    cfg: PrimitiveConfig,
    snap: Checkpoint,
    snap_cycles: u64,
    /// Sender target encoding a 1 (mapped) and a 0 (unmapped hole).
    t1: VirtAddr,
    t0: VirtAddr,
    /// Victim branch site (fetch: Listing 1 nop; execute: Listing 2
    /// call).
    victim: VirtAddr,
    /// Listing 3 gadget (execute channel only).
    gadget: VirtAddr,
}

/// One decoded bit and the simulated cycles its trial consumed.
struct BitSample {
    correct: bool,
    abstained: bool,
    probes: u32,
    confidence: f64,
    cycles: u64,
}

impl ChannelScenario {
    fn uarch_salt(&self) -> u64 {
        self.profile.name.bytes().map(u64::from).sum::<u64>()
    }
}

impl Scenario for ChannelScenario {
    type State = ChannelState;
    type Checkpoint = ChannelState;
    type Sample = BitSample;
    type Output = CovertResult;

    fn trials(&self) -> usize {
        self.config.bits
    }

    fn setup(&self) -> Result<ChannelState, ScenarioError> {
        let boot_salt = match self.kind {
            CovertKind::Fetch => 0xc0de,
            CovertKind::Execute => 0xe8ec,
        };
        let mut sys =
            System::new_cached(self.profile.clone(), 1 << 30, self.config.seed ^ boot_salt)
                .map_err(|e| PrimitiveError(e.to_string()))?;
        let attacker = VirtAddr::new(0x5000_0000);
        let mut cfg = PrimitiveConfig::for_system(&sys, attacker);
        // Standing probe mapping, installed *before* the checkpoint so
        // every trial re-arms it in place instead of re-mapping the
        // eviction buffer. Installing here consumes exactly the
        // physical frames the first per-trial mapping would have, so
        // trial-visible addresses — and therefore trial outputs — are
        // unchanged (the determinism suite and the CI trial-throughput
        // A/B pin this). `PHANTOM_PROBE_ARENA=0` falls back to mapping
        // per probe.
        if std::env::var("PHANTOM_PROBE_ARENA").map_or(true, |v| v != "0") {
            let arena = match self.kind {
                CovertKind::Fetch => {
                    ProbeArena::install(sys.machine_mut(), attacker, ProbeLevel::L1I)
                }
                CovertKind::Execute => {
                    ProbeArena::install(sys.machine_mut(), attacker + 0x20_0000, ProbeLevel::L1D)
                }
            }
            .map_err(|e| PrimitiveError(e.to_string()))?;
            cfg = cfg.with_arena(arena);
        }
        let (t1, t0, victim, gadget) = match self.kind {
            CovertKind::Fetch => {
                // T1: executable kernel text; T0: the same low bits in an
                // unmapped region. Flipping bit 29 keeps T0 inside the
                // (sparsely occupied) image randomization range for every
                // slot — flipping bit 30 would land slot-0 boots inside
                // the kernel module, which is mapped.
                let t1 = sys.image().base + 0x2000 + 43 * 64;
                let t0 = VirtAddr::new(t1.raw() ^ 0x2000_0000);
                // The victim instruction (covert channels are
                // cooperative: the receiver knows where the kernel
                // speculates).
                (t1, t0, sys.image().listing1_nop, VirtAddr::new(0))
            }
            CovertKind::Execute => {
                // T1: a mapped physmap address; T0: same low bits,
                // unmapped slot.
                let t1 = sys.layout().physmap_base() + 0x10_0000 + 29 * 64;
                let t0 = VirtAddr::new(t1.raw() ^ 0x2_0000_0000);
                (
                    t1,
                    t0,
                    sys.image().listing2_call,
                    sys.image().listing3_gadget,
                )
            }
        };
        let snap = sys.machine_mut().checkpoint();
        let snap_cycles = sys.machine().cycles();
        Ok(ChannelState {
            sys,
            cfg,
            snap,
            snap_cycles,
            t1,
            t0,
            victim,
            gadget,
        })
    }

    fn checkpoint(&self, state: ChannelState) -> Result<ChannelState, ScenarioError> {
        Ok(state)
    }

    fn fork(&self, checkpoint: &ChannelState) -> Result<ChannelState, ScenarioError> {
        Ok(checkpoint.clone())
    }

    fn probe(&self, state: &mut ChannelState, trial: Trial) -> Result<BitSample, ScenarioError> {
        // Rewind to the post-boot checkpoint: every bit sees the same
        // receiver, regardless of which worker measures it.
        state.snap.rewind(state.sys.machine_mut());
        let mut rng = StdRng::seed_from_u64(trial.seed);
        let bit = rng.gen_bool(0.5);
        let target = if bit { state.t1 } else { state.t0 };
        let mut noise = self.noise_proto.reseeded(trial.seed ^ self.uarch_salt());
        let sys = &mut state.sys;
        let outcome = decode_adaptive(&self.decoder, |_| {
            let reading = match self.kind {
                CovertKind::Fetch => {
                    p1_probe_scored(sys, &state.cfg, state.victim, target, &mut noise)?
                }
                CovertKind::Execute => p2_probe_scored(
                    sys,
                    &state.cfg,
                    state.victim,
                    state.gadget,
                    target,
                    &mut noise,
                )?,
            };
            Ok::<_, ScenarioError>((reading.hit, reading.confidence))
        })?;
        let (correct, abstained) = match outcome.decoded {
            Decoded::Bit(b) => (b == bit, false),
            Decoded::Abstain => (false, true),
        };
        Ok(BitSample {
            correct,
            abstained,
            probes: outcome.probes,
            confidence: outcome.confidence.value(),
            cycles: state.sys.machine().cycles() - state.snap_cycles,
        })
    }

    fn score(&self, samples: Vec<BitSample>) -> CovertResult {
        let bits = samples.len();
        let correct = samples.iter().filter(|s| s.correct).count();
        let cycles: u64 = samples.iter().map(|s| s.cycles).sum();
        let probes: u64 = samples.iter().map(|s| u64::from(s.probes)).sum();
        let abstentions = samples.iter().filter(|s| s.abstained).count();
        let mean_confidence =
            samples.iter().map(|s| s.confidence).sum::<f64>() / bits.max(1) as f64;
        let seconds = self.profile.cycles_to_seconds(cycles);
        CovertResult {
            uarch: self.profile.name.clone(),
            model: self.profile.model.clone(),
            kind: self.kind,
            bits,
            accuracy: correct as f64 / bits.max(1) as f64,
            seconds,
            bits_per_sec: bits as f64 / seconds,
            probes,
            abstentions,
            mean_confidence,
        }
    }
}

fn run_channel_on(
    runner: &TrialRunner,
    scenario: &ChannelScenario,
) -> Result<CovertResult, PrimitiveError> {
    runner
        .run(scenario, scenario.config.seed)
        .map_err(|e| PrimitiveError(e.to_string()))
}

/// Run the fetch (P1) covert channel on one microarchitecture.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel(
    profile: UarchProfile,
    config: CovertConfig,
) -> Result<CovertResult, PrimitiveError> {
    fetch_channel_on(&TrialRunner::new(), profile, config)
}

/// [`fetch_channel`] on an explicit runner (thread-count control).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: CovertConfig,
) -> Result<CovertResult, PrimitiveError> {
    // Stress the sibling thread to stabilize the signal (§6.4 footnote).
    let noise = NoiseModel::with_smt_stress(config.seed);
    fetch_channel_noisy_on(runner, profile, config, noise)
}

/// [`fetch_channel`] with an explicit noise model (ablation sweeps). The
/// model's calibration knobs are kept; its stream is reseeded per trial.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel_noisy(
    profile: UarchProfile,
    config: CovertConfig,
    noise: NoiseModel,
) -> Result<CovertResult, PrimitiveError> {
    fetch_channel_noisy_on(&TrialRunner::new(), profile, config, noise)
}

/// [`fetch_channel_noisy`] on an explicit runner (thread-count control).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel_noisy_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: CovertConfig,
    noise: NoiseModel,
) -> Result<CovertResult, PrimitiveError> {
    fetch_channel_decoded_on(runner, profile, config, noise, DecoderConfig::default())
}

/// [`fetch_channel_noisy_on`] with an explicit decoder config —
/// `DecoderConfig::fixed(n)` reproduces the legacy fixed majority vote,
/// the default escalates adaptively.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel_decoded_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: CovertConfig,
    noise: NoiseModel,
    decoder: DecoderConfig,
) -> Result<CovertResult, PrimitiveError> {
    run_channel_on(
        runner,
        &ChannelScenario {
            profile,
            config,
            kind: CovertKind::Fetch,
            noise_proto: noise,
            decoder,
        },
    )
}

/// [`fetch_channel_decoded_on`] through the [`BootEveryFork`] adapter:
/// every trial re-boots and re-trains the system instead of forking the
/// post-boot checkpoint. Decoded bits and accuracy are identical to the
/// forking path by construction — only wall-clock differs. This is the
/// slow arm of the `repro serve --ab` comparison; never use it for
/// production sweeps.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn fetch_channel_boot_per_trial_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: CovertConfig,
    noise: NoiseModel,
    decoder: DecoderConfig,
) -> Result<CovertResult, PrimitiveError> {
    let seed = config.seed;
    let scenario = BootEveryFork(ChannelScenario {
        profile,
        config,
        kind: CovertKind::Fetch,
        noise_proto: noise,
        decoder,
    });
    runner
        .run(&scenario, seed)
        .map_err(|e| PrimitiveError(e.to_string()))
}

/// Run the execute (P2) covert channel (meaningful on Zen 1/2).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn execute_channel(
    profile: UarchProfile,
    config: CovertConfig,
) -> Result<CovertResult, PrimitiveError> {
    execute_channel_on(&TrialRunner::new(), profile, config)
}

/// [`execute_channel`] on an explicit runner (thread-count control).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn execute_channel_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: CovertConfig,
) -> Result<CovertResult, PrimitiveError> {
    // "Additional sibling thread workloads were unnecessary for the
    // tested parts" — plain realistic noise.
    let noise = NoiseModel::realistic(config.seed);
    execute_channel_decoded_on(runner, profile, config, noise, DecoderConfig::default())
}

/// [`execute_channel_on`] with explicit noise and decoder configs.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn execute_channel_decoded_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    config: CovertConfig,
    noise: NoiseModel,
    decoder: DecoderConfig,
) -> Result<CovertResult, PrimitiveError> {
    run_channel_on(
        runner,
        &ChannelScenario {
            profile,
            config,
            kind: CovertKind::Execute,
            noise_proto: noise,
            decoder,
        },
    )
}

/// The full Table 2: fetch rows for all four Zen parts, execute rows
/// for Zen 1/2.
///
/// # Errors
///
/// Returns [`PrimitiveError`] if any row fails.
pub fn table2(config: CovertConfig) -> Result<Vec<CovertResult>, PrimitiveError> {
    table2_on(&TrialRunner::new(), config)
}

/// [`table2`] on an explicit runner (thread-count control).
///
/// # Errors
///
/// Returns [`PrimitiveError`] if any row fails.
pub fn table2_on(
    runner: &TrialRunner,
    config: CovertConfig,
) -> Result<Vec<CovertResult>, PrimitiveError> {
    let mut rows = Vec::new();
    for profile in UarchProfile::amd() {
        let noise = NoiseModel::with_smt_stress(config.seed);
        let scenario = ChannelScenario {
            profile,
            config,
            kind: CovertKind::Fetch,
            noise_proto: noise,
            decoder: DecoderConfig::default(),
        };
        rows.push(run_channel_on(runner, &scenario)?);
    }
    for profile in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let noise = NoiseModel::realistic(config.seed);
        let scenario = ChannelScenario {
            profile,
            config,
            kind: CovertKind::Execute,
            noise_proto: noise,
            decoder: DecoderConfig::default(),
        };
        rows.push(run_channel_on(runner, &scenario)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: CovertConfig = CovertConfig { bits: 96, seed: 9 };

    #[test]
    fn fetch_channel_is_accurate_on_all_zen() {
        for p in UarchProfile::amd() {
            let name = p.name.clone();
            let r = fetch_channel(p, SMALL).unwrap();
            assert!(r.accuracy >= 0.85, "{name}: accuracy {}", r.accuracy);
            assert!(r.bits_per_sec > 0.0);
        }
    }

    #[test]
    fn execute_channel_works_on_zen12_not_zen3() {
        for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
            let name = p.name.clone();
            let r = execute_channel(p, SMALL).unwrap();
            assert!(r.accuracy >= 0.85, "{name}: accuracy {}", r.accuracy);
        }
        // On Zen 3 the phantom window never executes: the receiver sees
        // no signal and accuracy collapses to chance.
        let r = execute_channel(UarchProfile::zen3(), SMALL).unwrap();
        assert!(
            r.accuracy < 0.75,
            "Zen 3 execute channel is dead: {}",
            r.accuracy
        );
    }

    #[test]
    fn fetch_beats_chance_even_with_noise() {
        let r = fetch_channel(UarchProfile::zen2(), CovertConfig { bits: 160, seed: 5 }).unwrap();
        assert!(r.accuracy > 0.8);
        assert_eq!(r.bits, 160);
    }

    #[test]
    fn transfer_is_identical_at_any_thread_count() {
        let noise = NoiseModel::with_smt_stress(SMALL.seed);
        let scenario = ChannelScenario {
            profile: UarchProfile::zen3(),
            config: CovertConfig { bits: 48, seed: 3 },
            kind: CovertKind::Fetch,
            noise_proto: noise,
            decoder: DecoderConfig::default(),
        };
        let one = run_channel_on(&TrialRunner::with_threads(1), &scenario).unwrap();
        let four = run_channel_on(&TrialRunner::with_threads(4), &scenario).unwrap();
        assert_eq!(one.accuracy, four.accuracy);
        assert_eq!(one.seconds, four.seconds);
        assert_eq!(one.bits_per_sec, four.bits_per_sec);
        assert_eq!(one.probes, four.probes);
        assert_eq!(one.abstentions, four.abstentions);
        assert_eq!(one.mean_confidence, four.mean_confidence);
    }

    #[test]
    fn adaptive_decoder_beats_fixed_votes_under_realistic_noise() {
        // The tentpole claim: at equal or lower total probe cost, the
        // adaptive decoder matches or beats the legacy fixed 3-vote
        // majority under the realistic noise model.
        let config = CovertConfig { bits: 192, seed: 7 };
        let runner = TrialRunner::with_threads(2);
        let noise = NoiseModel::realistic(config.seed);
        let adaptive = fetch_channel_decoded_on(
            &runner,
            UarchProfile::zen2(),
            config,
            noise.reseeded(config.seed),
            DecoderConfig::default(),
        )
        .unwrap();
        let fixed = fetch_channel_decoded_on(
            &runner,
            UarchProfile::zen2(),
            config,
            noise.reseeded(config.seed),
            DecoderConfig::fixed(3),
        )
        .unwrap();
        assert!(
            adaptive.accuracy >= fixed.accuracy,
            "adaptive {} vs fixed {}",
            adaptive.accuracy,
            fixed.accuracy
        );
        assert!(
            adaptive.probes <= fixed.probes,
            "adaptive {} probes vs fixed {}",
            adaptive.probes,
            fixed.probes
        );
        assert_eq!(fixed.probes, 3 * config.bits as u64);
        assert!(adaptive.mean_confidence > 0.5);
    }

    #[test]
    fn quiet_bits_cost_two_probes_each() {
        let config = CovertConfig { bits: 64, seed: 11 };
        let r = fetch_channel_decoded_on(
            &TrialRunner::with_threads(1),
            UarchProfile::zen2(),
            config,
            NoiseModel::quiet(config.seed),
            DecoderConfig::default(),
        )
        .unwrap();
        assert!(r.accuracy > 0.99, "{}", r.accuracy);
        assert_eq!(r.abstentions, 0);
        // Without noise every bit resolves in the first (2-vote) round.
        assert_eq!(r.probes, 2 * config.bits as u64);
    }
}
