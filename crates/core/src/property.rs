//! The discover fuzzer's leak property, checked over the event bus.
//!
//! ROADMAP item 2 phrases the search property as *"decoder-detectable
//! misprediction reaches stage ≥ ID"*: the frontend must resteer (the
//! decoder caught the BTB lying — the defining PHANTOM signature) *and*
//! the wrong path must have advanced at least into decode (a transient
//! µop-cache fill) before the squash landed.
//!
//! [`LeakProbe`] is an [`EventSink`] that watches one victim run and
//! answers exactly that question, independently of the §5.1
//! cache-timing channels. Reading the property off the event bus
//! instead of the channels gives the fuzzer a second, disagreeing
//! vantage point: `phantom_bench::discover` cross-checks the probe
//! against the [`TransientReport`](phantom_pipeline::TransientReport)
//! ground truth and flags any disagreement as a finding in its own
//! right (a channel bug, exactly the class of thing a fuzzer exists to
//! shake out).

use phantom_pipeline::{EventSink, PipelineEvent, ResteerKind};

use crate::experiment::Stage;

/// Event-bus observer for the leak property. Attach to a
/// [`Machine`](phantom_pipeline::Machine) before the victim run,
/// detach with
/// [`detach_sink_as`](phantom_pipeline::Machine::detach_sink_as)
/// afterwards, then ask [`LeakProbe::verdict`].
#[derive(Debug, Default, Clone)]
pub struct LeakProbe {
    /// Decoder-detected (frontend) resteers observed.
    pub frontend_resteers: u64,
    /// Execute-detected (backend) resteers observed.
    pub backend_resteers: u64,
    /// Wrong-path I-cache line touches (stage IF evidence).
    pub transient_fetches: u64,
    /// Wrong-path µop-cache fills (stage ID evidence).
    pub transient_decodes: u64,
    /// Wrong-path loads dispatched (stage EX evidence).
    pub transient_loads: u64,
    /// Nested phantom steers inside a transient window (§7.4).
    pub phantom_steers: u64,
}

impl LeakProbe {
    /// A fresh probe with all counters zero.
    pub fn new() -> LeakProbe {
        LeakProbe::default()
    }

    /// Deepest stage the wrong path reached, by event-bus evidence.
    pub fn deepest_stage(&self) -> Stage {
        if self.transient_loads > 0 {
            Stage::Ex
        } else if self.transient_decodes > 0 {
            Stage::Id
        } else if self.transient_fetches > 0 {
            Stage::If
        } else {
            Stage::None
        }
    }

    /// The fuzz property: a decoder-detectable misprediction occurred
    /// *and* its wrong path reached stage ≥ ID.
    pub fn verdict(&self) -> bool {
        self.frontend_resteers > 0 && self.deepest_stage() >= Stage::Id
    }
}

impl EventSink for LeakProbe {
    fn on_event(&mut self, event: &PipelineEvent) {
        match event {
            PipelineEvent::Resteer {
                kind: ResteerKind::Frontend,
                ..
            } => self.frontend_resteers += 1,
            PipelineEvent::Resteer {
                kind: ResteerKind::Backend,
                ..
            } => self.backend_resteers += 1,
            PipelineEvent::FetchLine {
                transient: true, ..
            } => self.transient_fetches += 1,
            PipelineEvent::UopCacheFill {
                transient: true, ..
            } => self.transient_decodes += 1,
            PipelineEvent::TransientLoad { .. } => self.transient_loads += 1,
            PipelineEvent::PhantomSteer { .. } => self.phantom_steers += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_cache::Level;
    use phantom_mem::VirtAddr;

    fn va(x: u64) -> VirtAddr {
        VirtAddr::new(x)
    }

    #[test]
    fn verdict_requires_frontend_resteer_and_decode() {
        let mut p = LeakProbe::new();
        assert!(!p.verdict());
        assert_eq!(p.deepest_stage(), Stage::None);

        // Fetch alone is stage IF: not enough.
        p.on_event(&PipelineEvent::FetchLine {
            va: va(0x1000),
            level: Level::Memory,
            transient: true,
        });
        p.on_event(&PipelineEvent::Resteer {
            pc: va(0x1000),
            kind: ResteerKind::Frontend,
            target: Some(va(0x2000)),
        });
        assert_eq!(p.deepest_stage(), Stage::If);
        assert!(!p.verdict());

        // A transient decode crosses the ID line.
        p.on_event(&PipelineEvent::UopCacheFill {
            va: va(0x2000),
            transient: true,
        });
        assert_eq!(p.deepest_stage(), Stage::Id);
        assert!(p.verdict());

        // A transient load promotes to EX; the verdict stays true.
        p.on_event(&PipelineEvent::TransientLoad {
            va: va(0x60_0000),
            level: Level::Memory,
        });
        assert_eq!(p.deepest_stage(), Stage::Ex);
        assert!(p.verdict());
    }

    #[test]
    fn backend_only_resteer_is_spectre_not_phantom() {
        // Stage-EX evidence with only a *backend* resteer is classic
        // Spectre: the decoder never objected, so the property fails.
        let mut p = LeakProbe::new();
        p.on_event(&PipelineEvent::Resteer {
            pc: va(0x1000),
            kind: ResteerKind::Backend,
            target: None,
        });
        p.on_event(&PipelineEvent::UopCacheFill {
            va: va(0x2000),
            transient: true,
        });
        p.on_event(&PipelineEvent::TransientLoad {
            va: va(0x60_0000),
            level: Level::L1,
        });
        assert_eq!(p.deepest_stage(), Stage::Ex);
        assert!(!p.verdict());
        assert_eq!(p.backend_resteers, 1);
    }

    #[test]
    fn architectural_traffic_is_ignored() {
        let mut p = LeakProbe::new();
        p.on_event(&PipelineEvent::FetchLine {
            va: va(0x1000),
            level: Level::L1,
            transient: false,
        });
        p.on_event(&PipelineEvent::UopCacheFill {
            va: va(0x1000),
            transient: false,
        });
        p.on_event(&PipelineEvent::DataAccess {
            va: va(0x60_0000),
            level: Level::L1,
        });
        assert_eq!(p.deepest_stage(), Stage::None);
        assert!(!p.verdict());
    }

    #[test]
    fn probe_observes_a_real_phantom_run() {
        // End to end on the machine: Zen 3, nop victim trained as jmp*,
        // must satisfy the property through the event bus alone.
        use phantom_isa::encode::encode_into;
        use phantom_isa::{Inst, Reg};
        use phantom_mem::PageFlags;
        use phantom_pipeline::{Machine, UarchProfile};

        let mut m = Machine::new(UarchProfile::zen3(), 1 << 26);
        let text = PageFlags::USER_TEXT | PageFlags::WRITE;
        let x = va(0x40_0ac0);
        let c = va(0x48_0b40);
        m.map_range(x.page_base(), 0x1000, text).unwrap();
        m.map_range(c.page_base(), 0x1000, text).unwrap();
        m.map_range(va(0x60_0000), 64, PageFlags::USER_DATA)
            .unwrap();
        m.set_reg(Reg::R8, 0x60_0000);
        let mut payload = Vec::new();
        encode_into(
            &Inst::Load {
                dst: Reg::R9,
                base: Reg::R8,
                disp: 0,
            },
            &mut payload,
        )
        .unwrap();
        payload.push(0xf4);
        m.poke(c, &payload);

        // Train jmp* -> C, then swap in the nop victim.
        let mut bytes = Vec::new();
        encode_into(&Inst::JmpInd { src: Reg::R11 }, &mut bytes).unwrap();
        bytes.push(0xf4);
        m.poke(x, &bytes);
        m.set_reg(Reg::R11, c.raw());
        m.set_pc(x);
        m.run(8).unwrap();
        m.poke(x, &[0x90, 0x90, 0xf4]);

        let id = m.attach_sink(LeakProbe::new());
        m.set_pc(x);
        m.run(8).unwrap();
        let probe = m.detach_sink_as::<LeakProbe>(id).expect("attached");
        assert!(probe.frontend_resteers > 0, "decoder caught the phantom");
        assert!(probe.verdict(), "Zen 3 phantom reaches ID");
        assert_eq!(probe.deepest_stage(), Stage::Id, "but not EX on Zen 3");
    }
}
