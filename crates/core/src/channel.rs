//! Observation channels (§5.1, Figure 5): detecting how far a phantom
//! path advanced in the pipeline *without relying on transient
//! execution*.
//!
//! * [`IfChannel`] — Figure 5 A: flush the candidate target line from
//!   the I-cache, run the victim, then time an instruction fetch of the
//!   line. A fast fetch means the frontend transiently fetched it.
//! * [`IdChannel`] — Figure 5 B: prime one µop-cache set by executing a
//!   series of 7 direct jumps spaced 4096 bytes apart (all mapping to
//!   the set), run the victim, re-run the series while sampling the
//!   µop-cache hit counter. A missing way means the victim's phantom
//!   target was *decoded*.
//! * [`ExChannel`] — flush a data line the phantom path would load, run
//!   the victim, time a reload. A fast reload means a wrong-path load
//!   dispatched (transient execution).

use phantom_cache::Event;
use phantom_isa::asm::Assembler;
use phantom_isa::Inst;
use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel, VirtAddr};
use phantom_pipeline::Machine;
use phantom_sidechannel::{NoiseModel, Reading};

/// Number of jumps in the µop-cache priming series (the paper uses 7).
pub const JMP_SERIES_LEN: usize = 7;

/// Errors from channel construction.
#[derive(Debug)]
pub struct ChannelError(pub String);

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "observation channel setup failed: {}", self.0)
    }
}

impl std::error::Error for ChannelError {}

/// The Instruction Fetch observation channel (I-cache timing).
///
/// Works on targets the observer can fetch architecturally (same
/// privilege); the cross-privilege attacks use Prime+Probe instead.
#[derive(Debug, Clone, Copy)]
pub struct IfChannel {
    target: VirtAddr,
}

impl IfChannel {
    /// Observe fetches of the line containing `target`.
    pub fn new(target: VirtAddr) -> IfChannel {
        IfChannel { target }
    }

    /// The observed address.
    pub fn target(&self) -> VirtAddr {
        self.target
    }

    /// Arm: flush the target's line from the hierarchy.
    pub fn arm(&self, machine: &mut Machine) {
        if let Ok(pa) = machine.page_table().translate(
            self.target,
            AccessKind::Read,
            PrivilegeLevel::Supervisor,
        ) {
            machine.caches_mut().flush_line(pa.raw());
        }
    }

    /// Probe: time an instruction fetch of the target line. Returns
    /// `true` when the line was already cached (i.e. the victim's
    /// phantom path fetched it).
    pub fn observe(&self, machine: &mut Machine, noise: &mut NoiseModel) -> bool {
        self.observe_scored(machine, noise).hit
    }

    /// [`observe`](Self::observe) as a confidence-scored [`Reading`]:
    /// the margin from the hit threshold is normalized against the
    /// memory latency. An untranslatable target yields
    /// [`Reading::none`].
    pub fn observe_scored(&self, machine: &mut Machine, noise: &mut NoiseModel) -> Reading {
        let Ok(pa) =
            machine
                .page_table()
                .translate(self.target, AccessKind::Execute, PrivilegeLevel::User)
        else {
            return Reading::none();
        };
        let (_, latency) = machine.caches_mut().access_inst(pa.raw());
        machine.add_cycles(latency);
        let cfg = *machine.caches().config();
        let threshold = cfg.l1_latency + cfg.l2_latency + noise.jitter_cycles;
        Reading::classify(noise.jitter(latency), threshold, cfg.memory_latency)
    }
}

/// The Instruction Decode observation channel (µop-cache counters).
#[derive(Debug, Clone, Copy)]
pub struct IdChannel {
    series_start: VirtAddr,
    page_offset: u64,
}

impl IdChannel {
    /// Install the priming jmp-series: [`JMP_SERIES_LEN`] direct forward
    /// jumps at `series_base + i*4096 + page_offset`, each jumping to the
    /// next, ending in `hlt`. All series instructions map to the
    /// µop-cache set selected by `page_offset` (bits \[11:6\]).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] if mapping or assembly fails.
    pub fn install(
        machine: &mut Machine,
        series_base: VirtAddr,
        page_offset: u64,
    ) -> Result<IdChannel, ChannelError> {
        if !series_base.is_aligned(4096) {
            return Err(ChannelError("series base must be page aligned".into()));
        }
        if page_offset >= 4096 - 64 {
            return Err(ChannelError(
                "page offset must leave room for a jump".into(),
            ));
        }
        let mut a = Assembler::new(series_base.raw() + page_offset);
        for i in 0..JMP_SERIES_LEN {
            a.label(format!("j{i}"));
            a.jmp(format!("j{}", i + 1));
            // Jump lands 4096 bytes ahead at the same page offset.
            a.org(series_base.raw() + (i as u64 + 1) * 4096 + page_offset);
        }
        a.label(format!("j{JMP_SERIES_LEN}"));
        a.push(Inst::Halt);
        let blob = a.finish().map_err(|e| ChannelError(e.to_string()))?;
        machine
            .load_blob(&blob, PageFlags::USER_TEXT)
            .map_err(|e| ChannelError(e.to_string()))?;
        Ok(IdChannel {
            series_start: VirtAddr::new(series_base.raw() + page_offset),
            page_offset,
        })
    }

    /// The µop-cache set this channel monitors.
    pub fn set(&self) -> usize {
        phantom_cache::UopCache::set_of(self.series_start.raw())
    }

    /// The page offset the series (and thus the monitored set) sits at.
    pub fn page_offset(&self) -> u64 {
        self.page_offset
    }

    fn run_series(machine: &mut Machine, start: VirtAddr) -> (u64, u64) {
        let before = machine.pmu().snapshot();
        machine.set_pc(start);
        machine
            .run(2 * JMP_SERIES_LEN as u64 + 4)
            .expect("series runs to hlt");
        (
            before.delta(machine.pmu(), Event::OpCacheHit),
            before.delta(machine.pmu(), Event::OpCacheMiss),
        )
    }

    /// Prime: execute the series until its lines occupy the monitored
    /// set (two passes settle replacement and train the series' own
    /// branches).
    pub fn prime(&self, machine: &mut Machine) {
        for _ in 0..2 {
            Self::run_series(machine, self.series_start);
        }
    }

    /// Sample: re-execute the series and return `(op-cache hits,
    /// op-cache misses)` for the pass. After [`IdChannel::prime`], all
    /// eight dispatches hit; a miss means a phantom decode evicted a
    /// way.
    pub fn sample(&self, machine: &mut Machine) -> (u64, u64) {
        Self::run_series(machine, self.series_start)
    }
}

/// The alternative transient-execution observation channel of §5.1:
/// port contention. "While observing execution port contention is
/// possible, the signal is less reliable than observing memory access."
///
/// Modeled through the `wrong_path_uops` performance counter (execution
/// ports occupied by squashed µops), sampled before/after the victim —
/// the same sampling discipline as the ID channel. Unlike [`ExChannel`],
/// this fires for *any* wrong-path dispatch, loads or not.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortChannel {
    armed: Option<phantom_cache::perf::PerfSnapshot>,
}

impl PortChannel {
    /// A fresh, unarmed channel.
    pub fn new() -> PortChannel {
        PortChannel::default()
    }

    /// Arm: snapshot the counter before the victim runs.
    pub fn arm(&mut self, machine: &Machine) {
        self.armed = Some(machine.pmu().snapshot());
    }

    /// Observe: how many wrong-path µops dispatched since arming.
    ///
    /// # Panics
    ///
    /// Panics if the channel was never armed (a harness bug).
    pub fn observe(&self, machine: &Machine) -> u64 {
        let snap = self
            .armed
            .expect("PortChannel must be armed before observing");
        snap.delta(machine.pmu(), Event::WrongPathUops)
    }
}

/// The transient-execution observation channel (D-cache timing).
#[derive(Debug, Clone, Copy)]
pub struct ExChannel {
    probe: VirtAddr,
}

impl ExChannel {
    /// Observe wrong-path loads of the line containing `probe` (a
    /// user-readable data address the phantom target's load touches).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] if the probe page cannot be mapped.
    pub fn install(machine: &mut Machine, probe: VirtAddr) -> Result<ExChannel, ChannelError> {
        machine
            .map_range(probe, 64, PageFlags::USER_DATA)
            .map_err(|e| ChannelError(e.to_string()))?;
        Ok(ExChannel { probe })
    }

    /// The probed data address.
    pub fn probe_addr(&self) -> VirtAddr {
        self.probe
    }

    /// Arm: flush the probe line.
    pub fn arm(&self, machine: &mut Machine) {
        phantom_sidechannel::flush(machine, self.probe);
    }

    /// Probe: time a reload. `true` means the wrong path loaded it.
    pub fn observe(&self, machine: &mut Machine, noise: &mut NoiseModel) -> bool {
        self.observe_scored(machine, noise).hit
    }

    /// [`observe`](Self::observe) as a confidence-scored [`Reading`].
    pub fn observe_scored(&self, machine: &mut Machine, noise: &mut NoiseModel) -> Reading {
        let latency = phantom_sidechannel::reload(machine, self.probe, noise);
        let cfg = *machine.caches().config();
        let threshold = cfg.l1_latency + cfg.l2_latency + noise.jitter_cycles;
        Reading::classify(latency, threshold, cfg.memory_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_pipeline::UarchProfile;

    #[test]
    fn if_channel_distinguishes_fetched_from_cold() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let target = VirtAddr::new(0x30_0b40);
        m.map_range(target, 64, PageFlags::USER_TEXT).unwrap();
        let ch = IfChannel::new(target);
        ch.arm(&mut m);
        assert!(!ch.observe(&mut m, &mut noise), "cold line");
        // A fetch of the line (as a phantom path would do)…
        let pa = m
            .page_table()
            .translate(target, AccessKind::Execute, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_inst(pa.raw());
        // Flush-and-refetch cycle: arm() then fetch then observe.
        ch.arm(&mut m);
        m.caches_mut().access_inst(pa.raw());
        assert!(ch.observe(&mut m, &mut noise), "fetched line is fast");
    }

    #[test]
    fn id_channel_sees_a_phantom_decode_in_its_set() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 26);
        let ch = IdChannel::install(&mut m, VirtAddr::new(0x70_0000), 0xac0).unwrap();
        ch.prime(&mut m);
        let (hits, misses) = ch.sample(&mut m);
        assert_eq!(misses, 0, "primed series all hits");
        assert!(hits >= JMP_SERIES_LEN as u64);
        // Simulate a phantom decode into the same set: fill a line at an
        // aliasing address (what run_transient does).
        ch.prime(&mut m);
        m.uop_cache_mut().fill(0xdead_0ac0);
        let (_, misses) = ch.sample(&mut m);
        assert!(misses >= 1, "eviction visible as op-cache miss");
        // A decode into a DIFFERENT set is invisible.
        ch.prime(&mut m);
        m.uop_cache_mut().fill(0xdead_0b00);
        let (_, misses) = ch.sample(&mut m);
        assert_eq!(misses, 0);
    }

    #[test]
    fn ex_channel_detects_wrong_path_loads() {
        let mut m = Machine::new(UarchProfile::zen1(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let probe = VirtAddr::new(0x60_0000);
        let ch = ExChannel::install(&mut m, probe).unwrap();
        ch.arm(&mut m);
        assert!(!ch.observe(&mut m, &mut noise));
        // A load (as a dispatched wrong-path load would).
        ch.arm(&mut m);
        let pa = m
            .page_table()
            .translate(probe, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        assert!(ch.observe(&mut m, &mut noise));
    }

    #[test]
    fn scored_observation_grades_the_boolean() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let target = VirtAddr::new(0x31_0b80);
        m.map_range(target, 64, PageFlags::USER_TEXT).unwrap();
        let ch = IfChannel::new(target);
        ch.arm(&mut m);
        let cold = ch.observe_scored(&mut m, &mut noise);
        assert!(!cold.hit);
        assert!(cold.confidence.value() > 0.0, "{cold:?}");
        let pa = m
            .page_table()
            .translate(target, AccessKind::Execute, PrivilegeLevel::User)
            .unwrap();
        ch.arm(&mut m);
        m.caches_mut().access_inst(pa.raw());
        let warm = ch.observe_scored(&mut m, &mut noise);
        assert!(warm.hit);
        assert!(warm.confidence.value() > 0.0, "{warm:?}");
        // An unmapped target carries no information.
        let none = IfChannel::new(VirtAddr::new(0xdead_0000)).observe_scored(&mut m, &mut noise);
        assert_eq!(none, Reading::none());
    }

    #[test]
    fn id_channel_rejects_bad_layout() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        assert!(IdChannel::install(&mut m, VirtAddr::new(0x70_0001), 0xac0).is_err());
        assert!(IdChannel::install(&mut m, VirtAddr::new(0x70_0000), 0xfe0).is_err());
    }

    #[test]
    fn id_channel_set_matches_page_offset() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 26);
        let ch = IdChannel::install(&mut m, VirtAddr::new(0x72_0000), 0xac0).unwrap();
        assert_eq!(ch.set(), (0xac0 >> 6) & 63);
        assert_eq!(ch.page_offset(), 0xac0);
    }

    #[test]
    fn port_channel_counts_wrong_path_dispatch() {
        // Build the standard phantom scenario on Zen 2 (executes) and
        // Zen 4 (squashes): the port channel separates them without any
        // cache probing.
        for (profile, expect_uops) in [(UarchProfile::zen2(), true), (UarchProfile::zen4(), false)]
        {
            let name = profile.name.clone();
            let mut m = Machine::new(profile, 1 << 24);
            let text = PageFlags::USER_TEXT | PageFlags::WRITE;
            let x = VirtAddr::new(0x40_0ac0);
            let c = VirtAddr::new(0x48_0b40);
            m.map_range(x.page_base(), 0x1000, text).unwrap();
            m.map_range(c.page_base(), 0x1000, text).unwrap();
            m.map_range(VirtAddr::new(0x60_0000), 64, PageFlags::USER_DATA)
                .unwrap();
            m.set_reg(phantom_isa::Reg::R8, 0x60_0000);
            m.poke(c, &[0x8b, 0x98, 0, 0, 0, 0, 0xf4]); // load r9,[r8]; hlt
            m.poke(x, &[0xff, 0x0b, 0xf4]); // jmp* r11; hlt
            m.set_reg(phantom_isa::Reg::R11, c.raw());
            m.set_pc(x);
            m.run(8).unwrap();
            m.poke(x, &[0x90, 0x90, 0xf4]);

            let mut port = PortChannel::new();
            port.arm(&m);
            m.set_pc(x);
            m.run(8).unwrap();
            let uops = port.observe(&m);
            assert_eq!(uops > 0, expect_uops, "{name}: {uops} wrong-path uops");
        }
    }
}
