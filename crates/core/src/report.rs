//! Rendering of the paper's tables and figures: plain text here,
//! machine-readable JSON in [`json`] (built on the deterministic
//! value type in [`value`]).

pub mod json;
pub mod value;

use crate::ablation::NoiseSweepPoint;
use crate::attacks::{KaslrImageResult, MdsLeakResult, PhysAddrResult, PhysmapResult};
use crate::collide::Figure7;
use crate::covert::CovertResult;
use crate::experiment::{Figure6Point, Table1Cell};
use crate::gadgets::GadgetCensus;
use crate::mitigations::OverheadResult;

fn rule(widths: &[usize]) -> String {
    let mut s = String::from("+");
    for w in widths {
        s.push_str(&"-".repeat(w + 2));
        s.push('+');
    }
    s
}

fn row(widths: &[usize], cells: &[String]) -> String {
    let mut s = String::from("|");
    for (w, c) in widths.iter().zip(cells) {
        s.push_str(&format!(" {c:<w$} |"));
    }
    s
}

/// Generic table renderer: header + rows, auto-sized columns.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    out.push_str(&rule(&widths));
    out.push('\n');
    out.push_str(&row(
        &widths,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&rule(&widths));
    out.push('\n');
    for r in rows {
        out.push_str(&row(&widths, r));
        out.push('\n');
    }
    out.push_str(&rule(&widths));
    out.push('\n');
    out
}

/// Render Table 1: training × victim × microarchitecture stages.
pub fn render_table1(cells: &[Table1Cell]) -> String {
    let mut header = vec!["training", "victim"];
    let uarch_names: Vec<&str> = cells
        .first()
        .map(|c| c.stages.iter().map(|(n, _)| n.as_str()).collect())
        .unwrap_or_default();
    header.extend(uarch_names.iter());
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let mut r = vec![c.train.to_string(), c.victim.to_string()];
            r.extend(c.stages.iter().map(|(_, s)| s.to_string()));
            r
        })
        .collect();
    format!(
        "Table 1: deepest pipeline stage reached by each training x victim combination\n{}",
        render_table(&header, &rows)
    )
}

/// Render Table 2: covert-channel accuracy and rate.
pub fn render_table2(results: &[CovertResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                r.uarch.to_string(),
                r.model.to_string(),
                format!("{:.2}%", r.accuracy * 100.0),
                format!("{:.0} bits/s", r.bits_per_sec),
            ]
        })
        .collect();
    format!(
        "Table 2: covert channel over {} bits (P1 fetch / P2 execute)\n{}",
        results.first().map_or(0, |r| r.bits),
        render_table(&["channel", "uarch", "model", "accuracy", "rate"], &rows)
    )
}

/// Render Table 3 rows (kernel-image KASLR runs).
pub fn render_table3(uarch: &str, runs: &[KaslrImageResult]) -> String {
    let correct = runs.iter().filter(|r| r.correct).count();
    let mut secs: Vec<f64> = runs.iter().map(|r| r.seconds).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = secs.get(secs.len() / 2).copied().unwrap_or(0.0);
    format!(
        "Table 3 [{}]: kernel image KASLR — accuracy {}/{} ({:.0}%), median time {:.4}s (simulated)\n",
        uarch,
        correct,
        runs.len(),
        100.0 * correct as f64 / runs.len().max(1) as f64,
        median
    )
}

/// Render Table 4 rows (physmap KASLR runs).
pub fn render_table4(uarch: &str, runs: &[PhysmapResult]) -> String {
    let correct = runs.iter().filter(|r| r.correct).count();
    let mut secs: Vec<f64> = runs.iter().map(|r| r.seconds).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = secs.get(secs.len() / 2).copied().unwrap_or(0.0);
    format!(
        "Table 4 [{}]: physmap KASLR — accuracy {}/{} ({:.0}%), median time {:.4}s (simulated)\n",
        uarch,
        correct,
        runs.len(),
        100.0 * correct as f64 / runs.len().max(1) as f64,
        median
    )
}

/// Render Table 5 rows (physical-address search runs).
pub fn render_table5(uarch: &str, memory_gib: u64, runs: &[PhysAddrResult]) -> String {
    let correct = runs.iter().filter(|r| r.correct).count();
    let mut secs: Vec<f64> = runs.iter().map(|r| r.seconds).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = secs.get(secs.len() / 2).copied().unwrap_or(0.0);
    format!(
        "Table 5 [{} | {} GiB]: physical address — accuracy {}/{} ({:.0}%), median time {:.4}s (simulated)\n",
        uarch,
        memory_gib,
        correct,
        runs.len(),
        100.0 * correct as f64 / runs.len().max(1) as f64,
        median
    )
}

/// Render the Figure 6 sweep as an ASCII series.
pub fn render_figure6(points: &[Figure6Point]) -> String {
    let mut out = String::from("Figure 6: op-cache misses after the victim, by page offset of C\n");
    let max = points.iter().map(|p| p.misses).max().unwrap_or(1).max(1);
    for p in points {
        let bar = "#".repeat((p.misses * 40 / max) as usize);
        out.push_str(&format!("{:#06x} | {:>3} {}\n", p.offset, p.misses, bar));
    }
    out
}

/// Render the recovered Figure 7 functions in the paper's notation.
pub fn render_figure7(fig: &Figure7) -> String {
    let mut out = String::from("Figure 7: recovered cross-privilege BTB functions (Zen 3/4)\n");
    for (i, f) in fig.functions.iter().enumerate() {
        out.push_str(&format!("f{i} = {f}\n"));
    }
    out.push_str(&format!(
        "paper's XOR patterns (0xffffbff800000000, 0xffff8003ff800000) hold: {}\n",
        fig.paper_patterns_hold
    ));
    out
}

/// Render the §7.4 MDS leak result.
pub fn render_mds(r: &MdsLeakResult) -> String {
    format!(
        "MDS-gadget kernel leak: {} bytes, accuracy {:.1}%, signal {}, {:.1} B/s (simulated)\n",
        r.leaked.len(),
        r.accuracy * 100.0,
        if r.signal { "yes" } else { "no" },
        r.bytes_per_sec
    )
}

/// Render the noise-robustness sweep: adaptive covert-channel
/// accuracy, probe spend, and abstentions per noise knob setting.
pub fn render_noise_sweep(points: &[NoiseSweepPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.axis.to_string(),
                format!("{}", p.value),
                format!("{:.2}%", p.accuracy * 100.0),
                p.probes.to_string(),
                p.abstentions.to_string(),
                format!("{:.2}", p.mean_confidence),
            ]
        })
        .collect();
    format!(
        "Noise sweep: adaptive fetch channel, one knob swept per point\n{}",
        render_table(
            &[
                "knob",
                "value",
                "accuracy",
                "probes",
                "abstained",
                "mean conf"
            ],
            &rows
        )
    )
}

/// Render the gadget census (§9.1).
pub fn render_gadgets(c: &GadgetCensus) -> String {
    format!(
        "Gadget census: {} Spectre gadgets; +{} single-load MDS gadgets = {} with PHANTOM ({:.1}x)\n",
        c.spectre_gadgets,
        c.mds_gadgets,
        c.total_with_phantom,
        c.expansion_factor()
    )
}

/// Render the mitigation-overhead suite (§6.3).
pub fn render_overhead(r: &OverheadResult) -> String {
    let rows: Vec<Vec<String>> = r
        .per_workload
        .iter()
        .map(|(name, base, supp)| {
            vec![
                name.to_string(),
                base.to_string(),
                supp.to_string(),
                format!("{:+.3}%", (*supp as f64 / *base as f64 - 1.0) * 100.0),
            ]
        })
        .collect();
    format!(
        "SuppressBPOnNonBr overhead (geomean {:.2}%)\n{}",
        r.geomean_overhead_pct,
        render_table(
            &[
                "workload",
                "baseline cycles",
                "suppressed cycles",
                "overhead"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Stage;

    #[test]
    fn generic_table_renders_aligned() {
        let s = render_table(
            &["a", "bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(
            lines.iter().all(|l| l.len() == lines[0].len()),
            "aligned:\n{s}"
        );
    }

    #[test]
    fn table1_rendering_includes_all_uarchs() {
        let cells = vec![Table1Cell {
            train: crate::experiment::TrainKind::JmpInd,
            victim: crate::experiment::VictimKind::NonBranch,
            stages: vec![("Zen".into(), Stage::Ex), ("Zen 4".into(), Stage::Id)],
        }];
        let s = render_table1(&cells);
        assert!(s.contains("Zen 4"));
        assert!(s.contains("EX"));
        assert!(s.contains("non branch"));
    }

    #[test]
    fn figure6_bars_scale() {
        let points = vec![
            Figure6Point {
                offset: 0x0,
                hits: 8,
                misses: 0,
            },
            Figure6Point {
                offset: 0xac0,
                hits: 0,
                misses: 8,
            },
        ];
        let s = render_figure6(&points);
        assert!(s.contains("0x0ac0"));
        assert!(s.contains("########"));
    }

    #[test]
    fn attack_tables_render_accuracy_and_median() {
        use crate::attacks::KaslrImageResult;
        let runs = vec![
            KaslrImageResult {
                guessed_slot: 5,
                actual_slot: 5,
                correct: true,
                best_score: 12,
                confidence: 0.4,
                cycles: 1000,
                seconds: 0.5,
            },
            KaslrImageResult {
                guessed_slot: 3,
                actual_slot: 7,
                correct: false,
                best_score: 2,
                confidence: 0.0,
                cycles: 3000,
                seconds: 1.5,
            },
        ];
        let s = render_table3("Zen 3", &runs);
        assert!(s.contains("1/2"));
        assert!(s.contains("50%"));
        assert!(
            s.contains("1.5000s"),
            "median of [0.5, 1.5] at index 1: {s}"
        );
    }

    #[test]
    fn figure7_rendering_uses_paper_notation() {
        use phantom_gf2::RecoveredFunction;
        let fig = Figure7 {
            functions: vec![RecoveredFunction {
                mask: (1 << 47) | (1 << 35) | (1 << 23),
            }],
            samples_per_address: 10,
            paper_patterns_hold: true,
        };
        let s = render_figure7(&fig);
        assert!(s.contains("f0 = b47 ^ b35 ^ b23"));
        assert!(s.contains("hold: true"));
    }

    #[test]
    fn mds_rendering_summarizes() {
        use crate::attacks::MdsLeakResult;
        let r = MdsLeakResult {
            leaked: vec![1, 2, 3],
            accuracy: 1.0,
            signal: true,
            mean_confidence: 0.8,
            cycles: 100,
            seconds: 0.001,
            bytes_per_sec: 3000.0,
        };
        let s = render_mds(&r);
        assert!(s.contains("3 bytes"));
        assert!(s.contains("100.0%"));
        assert!(s.contains("signal yes"));
    }

    #[test]
    fn overhead_rendering_lists_workloads() {
        use crate::mitigations::OverheadResult;
        let r = OverheadResult {
            per_workload: vec![("arith", 1000, 1010), ("bigcode", 2000, 2040)],
            geomean_overhead_pct: 1.2,
        };
        let s = render_overhead(&r);
        assert!(s.contains("geomean 1.20%"));
        assert!(s.contains("bigcode"));
        assert!(s.contains("+2.000%"));
    }

    #[test]
    fn noise_sweep_rendering_lists_knobs() {
        let points = vec![NoiseSweepPoint {
            axis: "jitter_cycles",
            value: 4.0,
            accuracy: 0.984375,
            probes: 310,
            abstentions: 1,
            mean_confidence: 0.72,
        }];
        let s = render_noise_sweep(&points);
        assert!(s.contains("jitter_cycles"));
        assert!(s.contains("98.44%"));
        assert!(s.contains("310"));
    }

    #[test]
    fn gadget_rendering_shows_expansion() {
        use crate::gadgets::GadgetCensus;
        let c = GadgetCensus {
            spectre_gadgets: 183,
            mds_gadgets: 539,
            total_with_phantom: 722,
        };
        let s = render_gadgets(&c);
        assert!(s.contains("183"));
        assert!(s.contains("722"));
        assert!(s.contains("3.9x"));
    }
}
