//! The §6.1 attacker primitives.
//!
//! * **P1** — detect mapped *executable* memory: inject a `jmp*`
//!   prediction at a kernel instruction on the `getpid()` path, pointed
//!   at a probe target `T`. The phantom fetch fills an I-cache line iff
//!   `T` is present and executable; observed with L1I Prime+Probe.
//!   Works on every Zen (and is unaffected by AutoIBRS — O5).
//! * **P2** — detect mapped (possibly non-executable) memory: confuse
//!   the direct `call` on the `readv()` path with a `jmp*` prediction to
//!   the Listing 3 gadget `mov r12, [r12+0xbe0]`; the transient load
//!   fills a D-cache line iff `[R12+0xbe0]` is present. Needs phantom
//!   *execution*: Zen 1/2 only.
//! * **P3** — leak a victim register: steer the same call-site confusion
//!   to a gadget that cache-encodes a byte of the live register into an
//!   attacker-observable buffer.
//!
//! Every primitive takes the *collision pattern* recovered in
//! [`crate::collide`] to choose its user-space training address, and an
//! attacker memory region for the eviction sets.

use phantom_isa::BranchKind;
use phantom_kernel::image::LISTING3_DISP;
use phantom_kernel::System;
use phantom_mem::VirtAddr;
use phantom_sidechannel::{NoiseModel, PrimeProbe, ProbeArena, ProbeLevel, ProbeResult, Reading};

/// Attacker configuration shared by the primitives.
#[derive(Debug, Clone, Copy)]
pub struct PrimitiveConfig {
    /// XOR pattern mapping a kernel address to an aliasing user address
    /// (from [`crate::collide::collision_pattern`], or the trivial
    /// high-bit pattern on Zen 1/2).
    pub pattern: u64,
    /// Base of the attacker's user region used for eviction sets.
    pub attacker_base: VirtAddr,
    /// A standing probe mapping to re-arm instead of rebuilding the
    /// eviction-set mapping every probe ([`ProbeArena::install`] it
    /// once, before checkpointing). `None` maps per probe. The probe
    /// primitives only consult an arena whose level matches theirs
    /// (P1 wants L1I, P2 wants L1D), so a config armed for one channel
    /// is safe to pass to the other.
    pub arena: Option<ProbeArena>,
}

impl PrimitiveConfig {
    /// A config using the paper's published Zen 3/4 pattern.
    pub fn zen34_paper(attacker_base: VirtAddr) -> PrimitiveConfig {
        PrimitiveConfig {
            pattern: 0xffff_bff8_0000_0000,
            attacker_base,
            arena: None,
        }
    }

    /// A config for Zen 1/2, where clearing the untagged high bits
    /// aliases directly.
    pub fn zen12(attacker_base: VirtAddr) -> PrimitiveConfig {
        PrimitiveConfig {
            pattern: 0xffff_fff0_0000_0000,
            attacker_base,
            arena: None,
        }
    }

    /// The same config with a standing [`ProbeArena`].
    pub fn with_arena(mut self, arena: ProbeArena) -> PrimitiveConfig {
        self.arena = Some(arena);
        self
    }

    /// The right pattern for a system's microarchitecture.
    pub fn for_system(sys: &System, attacker_base: VirtAddr) -> PrimitiveConfig {
        match sys.machine().profile().name.as_str() {
            "Zen" | "Zen 2" => PrimitiveConfig::zen12(attacker_base),
            _ => PrimitiveConfig::zen34_paper(attacker_base),
        }
    }

    /// The user-space alias of a kernel address under this pattern.
    pub fn user_alias(&self, kernel: VirtAddr) -> VirtAddr {
        VirtAddr::new(kernel.raw() ^ self.pattern)
    }
}

/// Errors from primitive execution.
#[derive(Debug)]
pub struct PrimitiveError(pub String);

impl std::fmt::Display for PrimitiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "primitive failed: {}", self.0)
    }
}

impl std::error::Error for PrimitiveError {}

fn err<E: std::fmt::Display>(e: E) -> PrimitiveError {
    PrimitiveError(e.to_string())
}

/// **P1**: does executing `victim_pc` in the kernel transiently fetch
/// `target`? Returns the raw probe evictions (callers threshold or score
/// against a baseline).
///
/// Steps (§6.1): ① train the BTB with a branch to `target` at the
/// user alias of `victim_pc`, ② prime the I-cache set `target` maps to,
/// ③ execute the victim (`getpid()`), ④ probe.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p1_probe(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    victim_pc: VirtAddr,
    target: VirtAddr,
    noise: &mut NoiseModel,
) -> Result<usize, PrimitiveError> {
    let set = ((target.raw() >> 6) & 63) as usize;
    Ok(p1_probe_in_set(sys, cfg, victim_pc, target, set, noise)?.evictions)
}

/// [`p1_probe`] with an explicit monitored I-cache set — the §7.3
/// scoring probes the *same* set both with the injected target mapping
/// into it (`T_S`) and mapping elsewhere (the baseline `B_S`).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p1_probe_in_set(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    victim_pc: VirtAddr,
    target: VirtAddr,
    probe_set: usize,
    noise: &mut NoiseModel,
) -> Result<ProbeResult, PrimitiveError> {
    Ok(p1_probe_in_set_scored(sys, cfg, victim_pc, target, probe_set, noise)?.0)
}

/// [`p1_probe_in_set`] with the probe's confidence-scored [`Reading`]
/// alongside the raw result, for decoders that weigh margins instead of
/// trusting the eviction count outright.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p1_probe_in_set_scored(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    victim_pc: VirtAddr,
    target: VirtAddr,
    probe_set: usize,
    noise: &mut NoiseModel,
) -> Result<(ProbeResult, Reading), PrimitiveError> {
    let pp = match cfg.arena {
        Some(arena) if arena.level() == ProbeLevel::L1I => {
            arena.arm(sys.machine_mut(), probe_set).map_err(err)?
        }
        _ => PrimeProbe::new_l1i(sys.machine_mut(), cfg.attacker_base, probe_set).map_err(err)?,
    };
    sys.train_user_branch(cfg.user_alias(victim_pc), BranchKind::Indirect, target)
        .map_err(err)?;
    pp.prime(sys.machine_mut()).map_err(err)?;
    sys.getpid().map_err(err)?;
    pp.probe_scored(sys.machine_mut(), noise).map_err(err)
}

/// [`p1_probe`] as a confidence-scored [`Reading`] (the probe set is
/// derived from `target` as in [`p1_probe`]).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p1_probe_scored(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    victim_pc: VirtAddr,
    target: VirtAddr,
    noise: &mut NoiseModel,
) -> Result<Reading, PrimitiveError> {
    let set = ((target.raw() >> 6) & 63) as usize;
    Ok(p1_probe_in_set_scored(sys, cfg, victim_pc, target, set, noise)?.1)
}

/// **P1** with a baseline: probes `target`, then probes again with the
/// injected target pointing at a *different* I-cache set, and returns
/// whether the signal beats the baseline. This is the practical
/// mapped-executable detector.
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p1_detect_executable(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    victim_pc: VirtAddr,
    target: VirtAddr,
    noise: &mut NoiseModel,
) -> Result<bool, PrimitiveError> {
    // §7.3: probe the SAME set twice — once with the injected target
    // mapping into it, once with the target shifted to another set — so
    // the kernel path's own cache footprint cancels out.
    let set = ((target.raw() >> 6) & 63) as usize;
    let signal = p1_probe_in_set(sys, cfg, victim_pc, target, set, noise)?;
    let baseline_target = VirtAddr::new(target.raw() ^ 0x800);
    let baseline = p1_probe_in_set(sys, cfg, victim_pc, baseline_target, set, noise)?;
    Ok(signal.evictions > baseline.evictions)
}

/// **P2**: is `target` mapped (readable) in the kernel, even if NX?
///
/// Injects `jmp*`-to-Listing-3 at the `readv()` call site and passes
/// `target - 0xbe0` as the second syscall argument, so the transient
/// `mov r12, [r12+0xbe0]` loads `target`. Probes the L1D set `target`'s
/// low bits select. Only effective where phantom windows execute
/// (Zen 1/2).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p2_probe(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    listing2_call: VirtAddr,
    listing3_gadget: VirtAddr,
    target: VirtAddr,
    noise: &mut NoiseModel,
) -> Result<usize, PrimitiveError> {
    let set = ((target.raw() >> 6) & 63) as usize;
    Ok(p2_probe_in_set(sys, cfg, listing2_call, listing3_gadget, target, set, noise)?.evictions)
}

/// [`p2_probe`] with an explicit monitored L1D set (for §7.3 scoring).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p2_probe_in_set(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    listing2_call: VirtAddr,
    listing3_gadget: VirtAddr,
    target: VirtAddr,
    probe_set: usize,
    noise: &mut NoiseModel,
) -> Result<ProbeResult, PrimitiveError> {
    Ok(p2_probe_in_set_scored(
        sys,
        cfg,
        listing2_call,
        listing3_gadget,
        target,
        probe_set,
        noise,
    )?
    .0)
}

/// [`p2_probe_in_set`] with the probe's confidence-scored [`Reading`].
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
#[allow(clippy::too_many_arguments)] // mirrors p2_probe_in_set
pub fn p2_probe_in_set_scored(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    listing2_call: VirtAddr,
    listing3_gadget: VirtAddr,
    target: VirtAddr,
    probe_set: usize,
    noise: &mut NoiseModel,
) -> Result<(ProbeResult, Reading), PrimitiveError> {
    let pp = match cfg.arena {
        Some(arena) if arena.level() == ProbeLevel::L1D => {
            arena.arm(sys.machine_mut(), probe_set).map_err(err)?
        }
        _ => PrimeProbe::new_l1d(sys.machine_mut(), cfg.attacker_base + 0x20_0000, probe_set)
            .map_err(err)?,
    };
    sys.train_user_branch(
        cfg.user_alias(listing2_call),
        BranchKind::Indirect,
        listing3_gadget,
    )
    .map_err(err)?;
    pp.prime(sys.machine_mut()).map_err(err)?;
    sys.readv(0, target.raw().wrapping_sub(LISTING3_DISP as u64))
        .map_err(err)?;
    pp.probe_scored(sys.machine_mut(), noise).map_err(err)
}

/// [`p2_probe`] as a confidence-scored [`Reading`].
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p2_probe_scored(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    listing2_call: VirtAddr,
    listing3_gadget: VirtAddr,
    target: VirtAddr,
    noise: &mut NoiseModel,
) -> Result<Reading, PrimitiveError> {
    let set = ((target.raw() >> 6) & 63) as usize;
    Ok(p2_probe_in_set_scored(sys, cfg, listing2_call, listing3_gadget, target, set, noise)?.1)
}

/// **P2** with a baseline comparison (target vs. a shifted set).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
pub fn p2_detect_mapped(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    listing2_call: VirtAddr,
    listing3_gadget: VirtAddr,
    target: VirtAddr,
    noise: &mut NoiseModel,
) -> Result<bool, PrimitiveError> {
    // Same-set signal/baseline pairing as P1 (§7.3).
    let set = ((target.raw() >> 6) & 63) as usize;
    let signal = p2_probe_in_set(sys, cfg, listing2_call, listing3_gadget, target, set, noise)?;
    let baseline_target = VirtAddr::new(target.raw() ^ 0x800);
    let baseline = p2_probe_in_set(
        sys,
        cfg,
        listing2_call,
        listing3_gadget,
        baseline_target,
        set,
        noise,
    )?;
    Ok(signal.evictions > baseline.evictions)
}

/// **P3**: leak the low byte of the victim's live `R12` during
/// `readv()`.
///
/// The attacker supplies a 256-line reload buffer (kernel-virtual
/// address `reload_kva`, typically the physmap alias of an attacker
/// page) and Flush+Reloads its own user mapping `reload_uva` afterward.
/// Returns the leaked byte, or `None` when no line lit up (squashed
/// window — e.g. on Zen 3/4).
///
/// # Errors
///
/// Returns [`PrimitiveError`] on setup or syscall failure.
#[allow(clippy::too_many_arguments)] // the primitive's contract mirrors the paper's step list
pub fn p3_leak_byte(
    sys: &mut System,
    cfg: &PrimitiveConfig,
    listing2_call: VirtAddr,
    p3_gadget: VirtAddr,
    victim_r12: u64,
    reload_uva: VirtAddr,
    reload_kva: VirtAddr,
    noise: &mut NoiseModel,
) -> Result<Option<u8>, PrimitiveError> {
    sys.train_user_branch(
        cfg.user_alias(listing2_call),
        BranchKind::Indirect,
        p3_gadget,
    )
    .map_err(err)?;
    // Flush all 256 candidate lines.
    for b in 0..256u64 {
        phantom_sidechannel::flush(sys.machine_mut(), reload_uva + (b << 6));
    }
    // The victim value rides in arg2 (which the readv path moves into
    // R12); the reload buffer's kernel address rides in arg1 (the fd),
    // which stays in R1 and is what the gadget adds.
    sys.readv(reload_kva.raw(), victim_r12).map_err(err)?;
    // Reload scan.
    let cfg_cache = *sys.machine().caches().config();
    let threshold = cfg_cache.l1_latency + cfg_cache.l2_latency + noise.jitter_cycles;
    let mut hit = None;
    for b in 0..256u64 {
        let latency = phantom_sidechannel::reload(sys.machine_mut(), reload_uva + (b << 6), noise);
        if latency <= threshold && hit.is_none() {
            hit = Some(b as u8);
        }
    }
    Ok(hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_mem::PageFlags;
    use phantom_pipeline::UarchProfile;

    const ATTACKER: VirtAddr = VirtAddr::new(0x5000_0000);

    fn boot(profile: UarchProfile, seed: u64) -> System {
        System::new(profile, 1 << 30, seed).expect("boot")
    }

    #[test]
    fn p1_sees_mapped_executable_kernel_text() {
        for profile in [UarchProfile::zen3(), UarchProfile::zen4()] {
            let name = profile.name.clone();
            let mut sys = boot(profile, 1);
            let mut noise = NoiseModel::quiet(0);
            let cfg = PrimitiveConfig::for_system(&sys, ATTACKER);
            let victim = sys.image().listing1_nop;
            // Target: another executable address inside the kernel image.
            let mapped = sys.image().base + 0x1000;
            let detected =
                p1_detect_executable(&mut sys, &cfg, victim, mapped, &mut noise).unwrap();
            assert!(
                detected,
                "P1 detects kernel text on {name} (despite AutoIBRS, O5)"
            );
        }
    }

    #[test]
    fn p1_rejects_unmapped_addresses() {
        let mut sys = boot(UarchProfile::zen3(), 2);
        let mut noise = NoiseModel::quiet(0);
        let cfg = PrimitiveConfig::for_system(&sys, ATTACKER);
        let victim = sys.image().listing1_nop;
        // An address in a *different* (unoccupied) KASLR slot.
        let unmapped = VirtAddr::new(sys.image().base.raw() ^ 0x1000_0000);
        let detected = p1_detect_executable(&mut sys, &cfg, victim, unmapped, &mut noise).unwrap();
        assert!(!detected, "no fetch from an unmapped candidate");
    }

    #[test]
    fn p1_rejects_mapped_but_nx_memory() {
        let mut sys = boot(UarchProfile::zen3(), 3);
        let mut noise = NoiseModel::quiet(0);
        let cfg = PrimitiveConfig::for_system(&sys, ATTACKER);
        let victim = sys.image().listing1_nop;
        let physmap_addr = sys.layout().physmap_base() + 0x4000;
        let detected =
            p1_detect_executable(&mut sys, &cfg, victim, physmap_addr, &mut noise).unwrap();
        assert!(!detected, "NX physmap is invisible to P1");
    }

    #[test]
    fn p2_sees_nx_physmap_on_zen2_only() {
        for (profile, expect) in [
            (UarchProfile::zen1(), true),
            (UarchProfile::zen2(), true),
            (UarchProfile::zen3(), false),
        ] {
            let name = profile.name.clone();
            let mut sys = boot(profile, 4);
            let mut noise = NoiseModel::quiet(0);
            let cfg = PrimitiveConfig::for_system(&sys, ATTACKER);
            let (l2c, l3g) = (sys.image().listing2_call, sys.image().listing3_gadget);
            let physmap_addr = sys.layout().physmap_base() + 0x10_4000;
            let detected =
                p2_detect_mapped(&mut sys, &cfg, l2c, l3g, physmap_addr, &mut noise).unwrap();
            assert_eq!(detected, expect, "P2 on {name}");
        }
    }

    #[test]
    fn p3_leaks_the_victim_register_byte_on_zen2() {
        let mut sys = boot(UarchProfile::zen2(), 5);
        let mut noise = NoiseModel::quiet(0);
        let cfg = PrimitiveConfig::for_system(&sys, ATTACKER);
        // Attacker reload buffer: 256 lines user + its kernel (physmap)
        // alias.
        let reload_uva = VirtAddr::new(0x5200_0000);
        sys.map_user(reload_uva, 256 * 64, PageFlags::USER_DATA)
            .unwrap();
        let pa = sys
            .machine()
            .page_table()
            .translate(
                reload_uva,
                phantom_mem::AccessKind::Read,
                phantom_mem::PrivilegeLevel::User,
            )
            .unwrap();
        let reload_kva = sys.layout().physmap_base() + pa.raw();
        let (l2c, gadget) = (sys.image().listing2_call, sys.module().p3_gadget);
        let leaked = p3_leak_byte(
            &mut sys,
            &cfg,
            l2c,
            gadget,
            0x1357_9bdf_0246_8ace,
            reload_uva,
            reload_kva,
            &mut noise,
        )
        .unwrap();
        assert_eq!(leaked, Some(0xce), "low byte of the victim R12");
    }

    #[test]
    fn p3_is_squashed_on_zen4() {
        let mut sys = boot(UarchProfile::zen4(), 6);
        let mut noise = NoiseModel::quiet(0);
        let cfg = PrimitiveConfig::for_system(&sys, ATTACKER);
        let reload_uva = VirtAddr::new(0x5200_0000);
        sys.map_user(reload_uva, 256 * 64, PageFlags::USER_DATA)
            .unwrap();
        let pa = sys
            .machine()
            .page_table()
            .translate(
                reload_uva,
                phantom_mem::AccessKind::Read,
                phantom_mem::PrivilegeLevel::User,
            )
            .unwrap();
        let reload_kva = sys.layout().physmap_base() + pa.raw();
        let (l2c, gadget) = (sys.image().listing2_call, sys.module().p3_gadget);
        let leaked = p3_leak_byte(
            &mut sys, &cfg, l2c, gadget, 0xAB, reload_uva, reload_kva, &mut noise,
        )
        .unwrap();
        assert_eq!(leaked, None, "no phantom execution on Zen 4");
    }

    #[test]
    fn p1_works_at_a_kernel_ret_victim_too() {
        // "given that branches are common in software, the impact of
        // this mitigation is negligible" (§6.3): the injection point
        // need not be a nop. Confuse the kernel's __fdget_pos inner
        // `ret` (exercised by readv) instead of the getpid nop.
        let mut sys = boot(UarchProfile::zen3(), 91);
        let mut noise = NoiseModel::quiet(0);
        let cfg = PrimitiveConfig::for_system(&sys, ATTACKER);
        // The inner function's ret: call target + 3 (its NopN len 3).
        let inner_ret = {
            let call = sys.image().listing2_call;
            let bytes = sys.machine().peek(call, 5);
            let (inst, _) = phantom_isa::decode::decode(&bytes).unwrap();
            let target = inst.direct_target(call.raw()).unwrap();
            VirtAddr::new(target + 3)
        };
        let mapped = sys.image().base + 0x1000;
        // Inject at the ret's alias; readv() executes it.
        let set = ((mapped.raw() >> 6) & 63) as usize;
        let pp = PrimeProbe::new_l1i(sys.machine_mut(), ATTACKER, set).unwrap();
        sys.train_user_branch(
            cfg.user_alias(inner_ret),
            phantom_isa::BranchKind::Indirect,
            mapped,
        )
        .unwrap();
        pp.prime(sys.machine_mut()).unwrap();
        sys.readv(0, 0).unwrap();
        let signal = pp.probe(sys.machine_mut(), &mut noise).unwrap().evictions;
        assert!(
            signal > 0,
            "phantom fires at a branch victim inside the kernel"
        );
    }

    #[test]
    fn stibp_blocks_cross_thread_injection() {
        // Sibling-thread injection: with STIBP (part of the hardened
        // boot), an entry trained on thread 1 never steers thread 0.
        // Same-set signal/baseline pairing cancels the kernel's own
        // cache footprint.
        let mut fresh = boot(UarchProfile::zen3(), 93);
        assert!(fresh.machine().bpu().msr().stibp);
        let cfg = PrimitiveConfig::for_system(&fresh, ATTACKER);
        let victim = fresh.image().listing1_nop;
        let mapped = fresh.image().base + 0x1000;
        let set = ((mapped.raw() >> 6) & 63) as usize;
        let measure = |sys: &mut System, target: VirtAddr, train_thread: u8| -> usize {
            sys.machine_mut().set_thread(train_thread);
            sys.train_user_branch(
                cfg.user_alias(victim),
                phantom_isa::BranchKind::Indirect,
                target,
            )
            .unwrap();
            sys.machine_mut().set_thread(0);
            let pp = PrimeProbe::new_l1i(sys.machine_mut(), ATTACKER, set).unwrap();
            pp.prime(sys.machine_mut()).unwrap();
            sys.getpid().unwrap();
            let mut noise = NoiseModel::quiet(0);
            pp.probe(sys.machine_mut(), &mut noise).unwrap().evictions
        };
        // Baseline: sibling-trained target aimed at another set.
        let baseline = measure(&mut fresh, VirtAddr::new(mapped.raw() ^ 0x800), 1);
        let signal = measure(&mut fresh, mapped, 1);
        assert!(
            signal <= baseline,
            "STIBP hides sibling-trained entries: signal {signal} baseline {baseline}"
        );
        // Control: same-thread training does fire.
        let same = measure(&mut fresh, mapped, 0);
        assert!(
            same > baseline,
            "same-thread injection works: {same} vs {baseline}"
        );
    }
}
