//! Mitigation benches: O4/O5 re-runs, IBPB, and the §6.3 overhead suite.

use criterion::{criterion_group, criterion_main, Criterion};
use phantom::mitigations::{
    ibpb_blocks_p1, o4_suppress_bp_on_non_br, o5_auto_ibrs_fetch, suppress_overhead,
};
use phantom::UarchProfile;

fn bench_o4(c: &mut Criterion) {
    let mut group = c.benchmark_group("mitigations");
    group.sample_size(10);
    group.bench_function("o4_suppress_rerun_zen2", |b| {
        b.iter(|| {
            let o = o4_suppress_bp_on_non_br(UarchProfile::zen2()).expect("runs");
            assert!(o.suppressed.fetched && o.suppressed.decoded && !o.suppressed.executed);
        })
    });
    group.bench_function("o5_auto_ibrs_zen4", |b| {
        b.iter(|| {
            assert!(o5_auto_ibrs_fetch(42).expect("runs"));
        })
    });
    group.bench_function("ibpb_zen3", |b| {
        b.iter(|| {
            assert!(!ibpb_blocks_p1(42).expect("runs"));
        })
    });
    group.finish();
}

fn bench_overhead_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("mitigations/overhead");
    group.sample_size(10);
    group.bench_function("suite_zen2", |b| {
        b.iter(|| {
            let r = suppress_overhead(UarchProfile::zen2());
            assert!(r.geomean_overhead_pct >= 0.0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_o4, bench_overhead_suite);
criterion_main!(benches);
