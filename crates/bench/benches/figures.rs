//! Figure 6 (µop-cache sweep) and Figure 7 (BTB function recovery)
//! benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phantom::collide::{collect_collisions, recover_figure7, BtbOracle};
use phantom::UarchProfile;
use phantom_bpu::BtbScheme;
use phantom_mem::VirtAddr;

fn bench_figure6_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6");
    group.sample_size(10);
    // One sweep with a coarse step (16 points).
    group.bench_function("zen2_sweep_16pts", |b| {
        b.iter(|| phantom::experiment::figure6(UarchProfile::zen2(), 0xac0, 0x100).expect("sweep"))
    });
    group.finish();
}

fn bench_collision_collection(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7/collisions");
    group.sample_size(10);
    let k = VirtAddr::new(0xffff_ffff_8124_6ac0);
    for n in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut oracle = BtbOracle::new(BtbScheme::zen34());
            b.iter(|| collect_collisions(&mut oracle, k, n, 42))
        });
    }
    group.finish();
}

fn bench_figure7_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7/solve");
    group.sample_size(10);
    group.bench_function("recover_from_24_samples", |b| {
        let mut oracle = BtbOracle::new(BtbScheme::zen34());
        b.iter(|| recover_figure7(&mut oracle, &[VirtAddr::new(0xffff_ffff_8124_6ac0)], 24, 7))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_figure6_point,
    bench_collision_collection,
    bench_figure7_recovery
);
criterion_main!(benches);
