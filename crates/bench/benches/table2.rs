//! Table 2 bench: covert channel throughput per microarchitecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phantom::covert::{execute_channel, fetch_channel, CovertConfig};
use phantom::UarchProfile;

const BITS: usize = 64;

fn bench_fetch_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/fetch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BITS as u64));
    for profile in UarchProfile::amd() {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, p| {
                b.iter(|| {
                    fetch_channel(
                        p.clone(),
                        CovertConfig {
                            bits: BITS,
                            seed: 42,
                        },
                    )
                    .expect("channel")
                })
            },
        );
    }
    group.finish();
}

fn bench_execute_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/execute");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BITS as u64));
    for profile in [UarchProfile::zen1(), UarchProfile::zen2()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, p| {
                b.iter(|| {
                    execute_channel(
                        p.clone(),
                        CovertConfig {
                            bits: BITS,
                            seed: 42,
                        },
                    )
                    .expect("channel")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fetch_channel, bench_execute_channel);
criterion_main!(benches);
