//! End-to-end trials/sec for the campaign hot loop, A/B'ing the
//! trace/superblock engine (`PHANTOM_TRACE_CACHE`). The measured unit
//! is [`campaign::run_job`] — boot, checkpoint, fork, rewind-per-bit,
//! adaptive decode — i.e. exactly what a campaign spends its time on.
//! Both arms produce bit-identical campaign records (the engine's
//! contract); only host wall-clock differs. Numbers are recorded in
//! `EXPERIMENTS.md` §trace-engine.
//!
//! Also prints a one-shot per-scenario hit/bailout-rate table (not a
//! timed benchmark) so the EXPERIMENTS.md replay-rate columns come from
//! the same probe loop the channels run.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phantom::primitives::{p1_probe_scored, p2_probe_scored, PrimitiveConfig};
use phantom::runner::TrialRunner;
use phantom::{UarchProfile, UarchRegistry};
use phantom_bench::campaign::{self, CampaignConfig, CampaignScenario};
use phantom_isa::asm::Assembler;
use phantom_isa::inst::AluOp;
use phantom_isa::{Inst, Reg};
use phantom_kernel::System;
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::Machine;
use phantom_sidechannel::{NoiseModel, PrimeProbe, ProbeArena, ProbeLevel};

/// The default campaign grid (all uarches × both channels × all noise
/// points) scaled to criterion-iteration size by lowering bits per job.
fn mix(bits: usize) -> CampaignConfig {
    let registry = UarchRegistry::with_builtins();
    let mut cfg = CampaignConfig::default_grid(&registry);
    cfg.bits = bits;
    cfg
}

/// Machines read `PHANTOM_TRACE_CACHE` at boot, and every job boots its
/// own system, so flipping the variable between arms A/Bs the engine
/// end to end without touching the measured code path.
fn set_trace_arm(enabled: bool) {
    std::env::set_var("PHANTOM_TRACE_CACHE", if enabled { "1" } else { "0" });
}

/// One representative job per scenario (zen2, quiet noise), 64 bits:
/// the per-scenario trials/sec A/B.
fn bench_per_scenario(c: &mut Criterion) {
    let cfg = mix(64);
    let jobs = campaign::jobs(&cfg);
    let mut group = c.benchmark_group("trials/zen2");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.bits as u64));
    for scenario in [CampaignScenario::Fetch, CampaignScenario::Execute] {
        let job = jobs
            .iter()
            .find(|j| j.uarch_key == "zen2" && j.scenario == scenario && j.noise.axis == "quiet")
            .expect("zen2 quiet job exists in the default grid");
        for trace in [false, true] {
            let id = format!(
                "{}/trace={}",
                scenario.as_str(),
                if trace { "on" } else { "off" }
            );
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                set_trace_arm(trace);
                let runner = TrialRunner::with_threads(1);
                b.iter(|| campaign::run_job(&runner, &cfg, job).expect("job runs"));
            });
        }
    }
    group.finish();
}

/// The whole default mix — every job in the default grid at 8 bits per
/// job — as one iteration. This is the number the ISSUE's ≥2x target is
/// scored against.
fn bench_default_mix(c: &mut Criterion) {
    let cfg = mix(8);
    let jobs = campaign::jobs(&cfg);
    let mut group = c.benchmark_group("trials/default_mix");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.total_trials() as u64));
    for trace in [false, true] {
        let id = if trace { "trace=on" } else { "trace=off" };
        group.bench_function(BenchmarkId::from_parameter(id), |b| {
            set_trace_arm(trace);
            let runner = TrialRunner::with_threads(1);
            b.iter(|| {
                for job in &jobs {
                    campaign::run_job(&runner, &cfg, job).expect("job runs");
                }
            });
        });
    }
    group.finish();
    std::env::remove_var("PHANTOM_TRACE_CACHE");
}

/// The host-throughput toggles: boot-image cache, persistent probe
/// arenas, journaled rewind, frame pool. All read per use (boot-cache
/// per cached boot, arena at scenario setup, journal/pool at machine
/// construction), so flipping them between arms A/Bs the paths end to
/// end.
const THROUGHPUT_VARS: [&str; 4] = [
    "PHANTOM_BOOT_CACHE",
    "PHANTOM_PROBE_ARENA",
    "PHANTOM_REWIND_JOURNAL",
    "PHANTOM_FRAME_POOL",
];

fn set_throughput_arm(fast: bool) {
    for var in THROUGHPUT_VARS {
        std::env::set_var(var, if fast { "1" } else { "0" });
    }
}

fn clear_throughput_arm() {
    for var in THROUGHPUT_VARS {
        std::env::remove_var(var);
    }
}

/// The whole default mix again, this time A/B'ing the host-throughput
/// paths (boot cache + probe arena + rewind journal + frame pool)
/// together. Both arms produce byte-identical campaign records (the
/// CI `trial-throughput` job `cmp`s them); only host wall-clock
/// differs. This is the number the ISSUE's ≥2x target is scored
/// against.
fn bench_throughput_mix(c: &mut Criterion) {
    let cfg = mix(8);
    let jobs = campaign::jobs(&cfg);
    let mut group = c.benchmark_group("trials/throughput_mix");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.total_trials() as u64));
    for fast in [false, true] {
        let id = if fast { "fast=on" } else { "fast=off" };
        group.bench_function(BenchmarkId::from_parameter(id), |b| {
            set_throughput_arm(fast);
            let runner = TrialRunner::with_threads(1);
            b.iter(|| {
                for job in &jobs {
                    campaign::run_job(&runner, &cfg, job).expect("job runs");
                }
            });
        });
    }
    group.finish();
    clear_throughput_arm();
}

/// Per-phase wall breakdown of one Fetch-channel trial loop, printed
/// for both arms: boot (cold `System::new` vs warm cached boot), fork
/// (checkpoint), and per-trial rewind / probe-map / step. Not a timed
/// criterion benchmark — the phases are measured independently with
/// `Instant` so the table shows *where* the trial budget goes (the
/// Amdahl table in EXPERIMENTS.md comes from this).
fn report_phase_breakdown(_c: &mut Criterion) {
    const TRIALS: u32 = 64;
    const PROBE_SET: usize = 43;
    for fast in [false, true] {
        set_throughput_arm(fast);
        let seed = 0x7aceu64 ^ 0xc0de;
        if fast {
            // Build the (zen2, 1 GiB) template untimed: the boot row
            // reports the steady-state (warm-cache) cost.
            drop(System::new_cached(UarchProfile::zen2(), 1 << 30, seed));
        }
        let t = Instant::now();
        let mut sys =
            System::new_cached(UarchProfile::zen2(), 1 << 30, seed).expect("system boots");
        let boot = t.elapsed().as_secs_f64();

        let attacker = VirtAddr::new(0x5000_0000);
        let arena = fast.then(|| {
            ProbeArena::install(sys.machine_mut(), attacker, ProbeLevel::L1I)
                .expect("arena installs")
        });
        let mut cfg = PrimitiveConfig::for_system(&sys, attacker);
        if let Some(arena) = arena {
            cfg = cfg.with_arena(arena);
        }
        let victim = sys.image().listing1_nop;
        let t1 = sys.image().base + 0x2000 + (PROBE_SET as u64) * 64;

        let t = Instant::now();
        let snap = sys.machine_mut().checkpoint();
        let fork = t.elapsed().as_secs_f64();

        let mut noise = NoiseModel::quiet(seed);
        let (mut rewind, mut map, mut step) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..TRIALS {
            let t = Instant::now();
            snap.rewind(sys.machine_mut());
            rewind += t.elapsed().as_secs_f64();
            // The probe-mapping phase in isolation: re-arm over the
            // standing arena vs map a fresh eviction set.
            let t = Instant::now();
            let probe = match arena {
                Some(arena) => arena.arm(sys.machine_mut(), PROBE_SET).expect("arena arms"),
                None => {
                    PrimeProbe::new_l1i(sys.machine_mut(), attacker, PROBE_SET).expect("probe maps")
                }
            };
            map += t.elapsed().as_secs_f64();
            drop(probe);
            let t = Instant::now();
            p1_probe_scored(&mut sys, &cfg, victim, t1, &mut noise).expect("probe runs");
            step += t.elapsed().as_secs_f64();
        }
        let per = 1e6 / TRIALS as f64;
        println!(
            "phase-breakdown {}: boot {:.2} ms, fork {:.2} ms, per-trial rewind {:.1} us, \
             map {:.1} us, step {:.1} us",
            if fast { "fast" } else { "legacy" },
            boot * 1e3,
            fork * 1e3,
            rewind * per,
            map * per,
            step * per,
        );
    }
    clear_throughput_arm();
}

/// Replay-rate report: run each channel's real probe loop (the same
/// primitives the covert scenarios call) for 256 rewound trials on one
/// machine and print hits / bailouts / invalidations. Not a timed
/// benchmark — criterion ignores it; the table feeds EXPERIMENTS.md.
fn report_trace_rates(_c: &mut Criterion) {
    std::env::set_var("PHANTOM_TRACE_CACHE", "1");
    for scenario in [CampaignScenario::Fetch, CampaignScenario::Execute] {
        let seed = 0x7ace;
        let boot_salt = match scenario {
            CampaignScenario::Fetch => 0xc0de,
            CampaignScenario::Execute => 0xe8ec,
            // The PHT channel probes predictor state, not caches, so it
            // has no trace-replay rate to report.
            CampaignScenario::Pht => unreachable!("loop covers the covert scenarios only"),
        };
        let mut sys =
            System::new(UarchProfile::zen2(), 1 << 30, seed ^ boot_salt).expect("system boots");
        let attacker = VirtAddr::new(0x5000_0000);
        let cfg = PrimitiveConfig::for_system(&sys, attacker);
        // Same target geometry as the covert-channel scenarios.
        let (victim, gadget, t1) = match scenario {
            CampaignScenario::Fetch => (
                sys.image().listing1_nop,
                VirtAddr::new(0),
                sys.image().base + 0x2000 + 43 * 64,
            ),
            CampaignScenario::Execute => (
                sys.image().listing2_call,
                sys.image().listing3_gadget,
                sys.layout().physmap_base() + 0x10_0000 + 29 * 64,
            ),
            CampaignScenario::Pht => unreachable!("loop covers the covert scenarios only"),
        };
        let snap = sys.machine_mut().checkpoint();
        let mut noise = NoiseModel::quiet(seed);
        let trials = 256u64;
        for _ in 0..trials {
            snap.rewind(sys.machine_mut());
            match scenario {
                CampaignScenario::Fetch => p1_probe_scored(&mut sys, &cfg, victim, t1, &mut noise),
                CampaignScenario::Execute => {
                    p2_probe_scored(&mut sys, &cfg, victim, gadget, t1, &mut noise)
                }
                CampaignScenario::Pht => unreachable!("loop covers the covert scenarios only"),
            }
            .expect("probe runs");
        }
        let (hits, bailouts, invalidations) = sys.machine().trace_stats();
        let total = hits + bailouts;
        println!(
            "trace-rates {}: {trials} trials -> {hits} hits, {bailouts} bailouts \
             ({:.1}% replayed), {invalidations} invalidations",
            scenario.as_str(),
            if total > 0 {
                100.0 * hits as f64 / total as f64
            } else {
                0.0
            },
        );
    }
    std::env::remove_var("PHANTOM_TRACE_CACHE");
}

/// Steady-state stepping A/B: the same straight-line hot loop the
/// decode-cache snapshot uses, stepped 20k architectural instructions
/// per round, arms strictly alternated *within one process* and the
/// per-arm minimum taken. On a noisy shared host, sequential criterion
/// bench IDs drift by more than the effect size; alternation is the
/// only layout in which both arms see the same interference. Printed,
/// not criterion-timed, for exactly that reason.
fn report_steady_state(_c: &mut Criterion) {
    const STEPS: u64 = 20_000;
    const ROUNDS: usize = 12;
    let build = || {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut a = Assembler::new(0x40_0000);
        a.push(Inst::MovImm {
            dst: Reg::R0,
            imm: 0,
        });
        a.push(Inst::MovImm {
            dst: Reg::R1,
            imm: 3,
        });
        a.push(Inst::MovImm {
            dst: Reg::R2,
            imm: 0x1234_5678,
        });
        a.label("hot");
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R0,
            src: Reg::R1,
        });
        a.push(Inst::Alu {
            op: AluOp::Xor,
            dst: Reg::R2,
            src: Reg::R0,
        });
        a.push(Inst::Shl {
            dst: Reg::R2,
            amount: 1,
        });
        a.push(Inst::Shr {
            dst: Reg::R2,
            amount: 1,
        });
        a.jmp("hot");
        let blob = a.finish().expect("hot loop assembles");
        m.load_blob(&blob, PageFlags::USER_TEXT)
            .expect("hot loop fits");
        m.set_pc(VirtAddr::new(blob.base));
        m
    };
    let mut best = [f64::INFINITY; 2]; // [off, on]
    let mut machines: Vec<Machine> = (0..2)
        .map(|arm| {
            let mut m = build();
            m.set_trace_cache_enabled(arm == 1);
            m.run(STEPS).expect("warmup runs"); // warm caches + trace heat
            m
        })
        .collect();
    for _ in 0..ROUNDS {
        for (arm, m) in machines.iter_mut().enumerate() {
            let t = Instant::now();
            m.run(STEPS).expect("hot loop runs");
            let ns = t.elapsed().as_secs_f64() * 1e9 / STEPS as f64;
            best[arm] = best[arm].min(ns);
        }
    }
    println!(
        "steady-state stepping (hot loop, min of {ROUNDS} alternated rounds): \
         trace=off {:.1} ns/step, trace=on {:.1} ns/step ({:.2}x)",
        best[0],
        best[1],
        best[0] / best[1]
    );
}

criterion_group!(
    benches,
    report_trace_rates,
    report_steady_state,
    report_phase_breakdown,
    bench_per_scenario,
    bench_default_mix,
    bench_throughput_mix
);
criterion_main!(benches);
