//! Table 1 bench: the training × victim sweep, per microarchitecture
//! and for the full 8-uarch grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phantom::experiment::{run_combo, TrainKind, VictimKind};
use phantom::UarchProfile;

fn bench_single_combo(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/combo");
    group.sample_size(10);
    for profile in [
        UarchProfile::zen2(),
        UarchProfile::zen4(),
        UarchProfile::intel13(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, p| {
                b.iter(|| {
                    run_combo(p.clone(), TrainKind::JmpInd, VictimKind::NonBranch, 0)
                        .expect("combo runs")
                })
            },
        );
    }
    group.finish();
}

fn bench_full_grid_one_uarch(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/grid");
    group.sample_size(10);
    group.bench_function("zen2_all_22_combos", |b| {
        b.iter(|| {
            for (t, v) in phantom::experiment::asymmetric_combos() {
                run_combo(UarchProfile::zen2(), t, v, 0).expect("combo runs");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_combo, bench_full_grid_one_uarch);
criterion_main!(benches);
