//! Tables 3/4/5 and the §7.4 leak: end-to-end attack benches (reduced
//! search windows; the full-protocol numbers come from `repro` with
//! `PHANTOM_FULL=1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phantom::UarchProfile;
use phantom_bench::{run_mds, run_table3, run_table4, run_table5};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/kaslr_image");
    group.sample_size(10);
    for profile in [
        UarchProfile::zen2(),
        UarchProfile::zen3(),
        UarchProfile::zen4(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, p| {
                // A fixed seed keeps iterations identical: the bench
                // measures the attack's runtime, not its noise statistics
                // (those are the repro binary's job).
                b.iter(|| {
                    let r = run_table3(p.clone(), 1, 16, 42).expect("attack");
                    assert!(r[0].correct, "attack stays reliable under bench");
                })
            },
        );
    }
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/physmap");
    group.sample_size(10);
    for profile in [UarchProfile::zen1(), UarchProfile::zen2()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, p| {
                b.iter(|| {
                    let r = run_table4(p.clone(), 1, 16, 42).expect("attack");
                    assert!(r[0].correct);
                })
            },
        );
    }
    group.finish();
}

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5/physaddr");
    group.sample_size(10);
    // 1 GiB vs 4 GiB: the paper's 8 GiB vs 64 GiB contrast, scaled. The
    // ratio of scan times tracks the candidate count (Table 5's 1 s vs
    // 16 s shape).
    for (label, bytes) in [("1GiB", 1u64 << 30), ("4GiB", 4u64 << 30)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &bytes, |b, &bytes| {
            b.iter(|| {
                let r = run_table5(UarchProfile::zen2(), bytes, 1, 42).expect("attack");
                assert!(r[0].correct);
            })
        });
    }
    group.finish();
}

fn bench_mds_leak(c: &mut Criterion) {
    const BYTES: usize = 16;
    let mut group = c.benchmark_group("mds_leak");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(BYTES as u64));
    for profile in [UarchProfile::zen1(), UarchProfile::zen2()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name.clone()),
            &profile,
            |b, p| {
                b.iter(|| {
                    let r = run_mds(p.clone(), BYTES, 1, 42).expect("attack");
                    assert!(r[0].accuracy > 0.9);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table3,
    bench_table4,
    bench_table5,
    bench_mds_leak
);
criterion_main!(benches);
