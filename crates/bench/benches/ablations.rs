//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Resteer-latency sweep** — where along the decoder-resteer axis
//!   does transient execution (EX) appear? The Zen 1/2 vs Zen 3/4 split
//!   is a latency threshold, not a binary feature.
//! * **BTB associativity sweep** — collision/eviction behavior of the
//!   alias buckets.
//! * **Prime+Probe traversal order** — forward traversal self-evicts
//!   under LRU; reverse traversal is what makes the channel usable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phantom::covert::{fetch_channel_noisy, CovertConfig};
use phantom::experiment::{run_combo, TrainKind, VictimKind};
use phantom::UarchProfile;
use phantom_mem::VirtAddr;
use phantom_pipeline::{Machine, ResteerKind, TransientWindow};
use phantom_sidechannel::{NoiseModel, PrimeProbe};

fn bench_resteer_latency_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/resteer_latency");
    group.sample_size(10);
    for latency in [4u64, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(latency), &latency, |b, &lat| {
            b.iter(|| {
                let mut profile = UarchProfile::zen2();
                profile.frontend_resteer_latency = lat;
                // The µop budget tracks the latency headroom past
                // fetch+decode (1 µop per spare cycle).
                let spare = lat.saturating_sub(profile.fetch_latency + profile.decode_latency);
                profile.phantom_exec_uops = spare as u32;
                let o =
                    run_combo(profile, TrainKind::JmpInd, VictimKind::NonBranch, 0).expect("combo");
                // The observation payload's load is the first wrong-path
                // µop: it dispatches as soon as ANY execute budget
                // survives the resteer.
                assert_eq!(o.executed, spare >= 1, "latency {lat}");
            })
        });
    }
    group.finish();
}

fn bench_window_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/window");
    group.sample_size(20);
    group.bench_function("for_resteer_all_profiles", |b| {
        let profiles = UarchProfile::all();
        b.iter(|| {
            for p in &profiles {
                let f = TransientWindow::for_resteer(p, ResteerKind::Frontend);
                let k = TransientWindow::for_resteer(p, ResteerKind::Backend);
                assert!(f.fetch && k.exec_uops > f.exec_uops);
            }
        })
    });
    group.finish();
}

fn bench_probe_traversal_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/prime_probe");
    group.sample_size(10);
    group.bench_function("prime_probe_round", |b| {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 13).expect("builds");
        let mut noise = NoiseModel::quiet(0);
        b.iter(|| {
            pp.prime(&mut m).expect("prime");
            let r = pp.probe(&mut m, &mut noise).expect("probe");
            assert_eq!(r.evictions, 0);
        })
    });
    group.finish();
}

fn bench_noise_sweep(c: &mut Criterion) {
    // Accuracy degrades gracefully as spurious-eviction probability
    // grows — the knob behind the sub-100% numbers of Tables 2-5.
    let mut group = c.benchmark_group("ablation/noise_sweep");
    group.sample_size(10);
    for pct in [0u32, 3, 10, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            let seed = 42;
            b.iter(|| {
                let mut noise = NoiseModel::quiet(seed);
                noise.spurious_evict = f64::from(pct) / 100.0;
                noise.missed_signal = f64::from(pct) / 200.0;
                let r = fetch_channel_noisy(
                    UarchProfile::zen2(),
                    CovertConfig { bits: 64, seed },
                    noise,
                )
                .expect("channel");
                // Shape: quiet -> perfect; light noise -> strong; at
                // heavy noise the single-shot channel degrades toward
                // chance (1 - 0.75^8 ≈ 90% false positives per probe at
                // 25%), which is exactly why the attacks retry and score.
                if pct == 0 {
                    assert!(r.accuracy > 0.99, "quiet channel is clean: {}", r.accuracy);
                } else if pct <= 3 {
                    assert!(r.accuracy > 0.7, "light noise stays strong: {}", r.accuracy);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_resteer_latency_sweep,
    bench_window_derivation,
    bench_probe_traversal_order,
    bench_noise_sweep
);
criterion_main!(benches);
