//! Microbenchmarks for the trial hot loop's fast paths: machine
//! checkpoint/rewind (copy-on-write vs the deep-copy cost it
//! replaced) and virtual-address translation (TLB fast path vs the
//! `BTreeMap` page walk). Numbers are recorded in `EXPERIMENTS.md`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use phantom::UarchProfile;
use phantom_mem::{PageFlags, VirtAddr, PAGE_SIZE};
use phantom_pipeline::Machine;

const DATA_BASE: u64 = 0x5000_0000;
/// Warm resident footprint: 1 MiB = 256 materialized frames.
const WARM_BYTES: u64 = 1 << 20;

/// A machine with a warm 1 MiB data footprint — the resident state a
/// trained trial machine carries into its snapshot.
fn warm_machine() -> Machine {
    let mut m = Machine::new(UarchProfile::zen2(), 1 << 26);
    m.map_range(VirtAddr::new(DATA_BASE), WARM_BYTES, PageFlags::USER_DATA)
        .expect("warm region fits");
    let warm = vec![0xa5u8; WARM_BYTES as usize];
    m.poke(VirtAddr::new(DATA_BASE), &warm);
    m
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/snapshot");
    group.sample_size(20);
    // The CoW checkpoint: per-resident-frame Arc bumps.
    group.bench_function("cow", |b| {
        let mut m = warm_machine();
        b.iter(|| black_box(m.snapshot()))
    });
    // The cost a whole-machine deep copy of physical memory paid per
    // checkpoint before CoW (every resident frame materialized).
    group.bench_function("deep_copy", |b| {
        let m = warm_machine();
        b.iter(|| black_box(m.phys().deep_clone()))
    });
    group.finish();
}

fn bench_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/restore");
    group.sample_size(20);
    for dirty_pages in [1u64, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("dirty_pages", dirty_pages),
            &dirty_pages,
            |b, &dirty_pages| {
                let mut m = warm_machine();
                let snap = m.snapshot();
                b.iter(|| {
                    for page in 0..dirty_pages {
                        m.poke_u64(VirtAddr::new(DATA_BASE + page * PAGE_SIZE), page);
                    }
                    m.restore(&snap);
                })
            },
        );
    }
    group.finish();
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/translate");
    group.sample_size(20);
    let va = VirtAddr::new(DATA_BASE + 0x1008);
    // TLB fast-path hit: prime a version-current supervisor entry so
    // `peek`'s translation is served without walking the page table.
    group.bench_function("tlb_hit", |b| {
        let mut m = warm_machine();
        let pa = m
            .page_table()
            .translate(
                va,
                phantom_mem::AccessKind::Read,
                phantom_mem::PrivilegeLevel::Supervisor,
            )
            .expect("mapped");
        let version = m.page_table().version();
        m.tlb_mut().insert(va, pa, PageFlags::USER_DATA, 1, version);
        b.iter(|| black_box(m.peek_u64(va)))
    });
    // No TLB entry: every translation is a full `BTreeMap` walk over
    // the 256-page mapping.
    group.bench_function("page_walk", |b| {
        let m = warm_machine();
        b.iter(|| black_box(m.peek_u64(va)))
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_restore, bench_translate);
criterion_main!(benches);
