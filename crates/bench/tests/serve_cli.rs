//! End-to-end tests of the `repro serve` campaign service through the
//! real binary: argument errors exit 2 with usage, `--workers` beats
//! `PHANTOM_THREADS`, and kill-then-`--resume` reproduces the
//! uninterrupted JSONL byte for byte.

use std::path::PathBuf;
use std::process::{Command, Output};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn repro(args: &[&str]) -> Output {
    Command::new(REPRO)
        .args(args)
        .env_remove("PHANTOM_THREADS")
        .env_remove("PHANTOM_FULL")
        .output()
        .expect("spawn repro")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("phantom-serve-{name}-{}", std::process::id()));
    p
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A tiny grid: one uarch × 3 scenarios × 5 noise points = 15 jobs at
/// 2 bits each.
fn tiny_args<'a>(out: &'a str) -> Vec<&'a str> {
    vec![
        "serve",
        "--uarch",
        "zen2",
        "--bits",
        "2",
        "--out",
        out,
        "--workers",
        "2",
    ]
}

#[test]
fn bad_workers_exits_2_with_usage() {
    for bad in ["0", "-3", "many", ""] {
        let out = repro(&["serve", "--workers", bad]);
        assert_eq!(out.status.code(), Some(2), "--workers {bad:?}");
        let err = stderr(&out);
        assert!(err.contains("usage:"), "no usage text for {bad:?}: {err}");
        assert!(err.contains("--workers") || err.contains("requires a value"));
    }
    // Missing value entirely.
    let out = repro(&["serve", "--workers"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn serve_only_flags_on_other_commands_exit_2_with_usage() {
    for args in [
        &["table2", "--resume", "x.jsonl"][..],
        &["bench", "--ab"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains("only valid with the serve command"));
        assert!(stderr(&out).contains("usage:"));
    }
    // --out/--seed are shared by serve and discover; --corpus is
    // discover-only.
    let out = repro(&["all", "--out", "x.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("only valid with the serve and discover commands"));
    let out = repro(&["table2", "--corpus", "dir"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("only valid with the discover command"));
}

#[test]
fn unreadable_resume_file_exits_2_with_usage() {
    let out = repro(&["serve", "--resume", "/nonexistent/campaign.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("--resume"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

/// `--workers` takes precedence over `PHANTOM_THREADS`: with the flag
/// given, a garbage env value is never consulted, never validated, and
/// the run succeeds. Without the flag, the same env value is a CLI
/// error (exit 2).
#[test]
fn workers_flag_overrides_phantom_threads() {
    let path = tmp("precedence");
    let out = Command::new(REPRO)
        .args(tiny_args(path.to_str().unwrap()))
        .env("PHANTOM_THREADS", "banana")
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("on 2 threads"), "{}", stderr(&out));

    let out = Command::new(REPRO)
        .args(["serve", "--uarch", "zen2", "--bits", "2"])
        .env("PHANTOM_THREADS", "banana")
        .output()
        .expect("spawn repro");
    assert_eq!(
        out.status.code(),
        Some(2),
        "env must be validated sans flag"
    );
    assert!(stderr(&out).contains("PHANTOM_THREADS"));
    std::fs::remove_file(&path).ok();
}

/// The flagship resume property through the real binary: run a small
/// campaign, truncate its output mid-file (tearing a record), resume
/// from the truncation, and require the final file to be byte-identical
/// to the uninterrupted one — across different worker counts.
#[test]
fn truncate_then_resume_is_byte_identical() {
    let full_path = tmp("full");
    let out = repro(&tiny_args(full_path.to_str().unwrap()));
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let full = std::fs::read(&full_path).expect("campaign output exists");
    assert!(full.ends_with(b"\n"));
    assert_eq!(full.iter().filter(|&&b| b == b'\n').count(), 15);

    // Tear the file roughly in half, mid-record.
    let part_path = tmp("part");
    std::fs::write(&part_path, &full[..full.len() / 2]).unwrap();

    let resumed_path = tmp("resumed");
    let mut args = vec!["serve", "--uarch", "zen2", "--bits", "2", "--workers", "4"];
    let part = part_path.to_str().unwrap().to_string();
    let resumed = resumed_path.to_str().unwrap().to_string();
    args.extend(["--resume", &part, "--out", &resumed]);
    let out = repro(&args);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("resuming"),
        "no resume note: {}",
        stderr(&out)
    );

    let rejoined = std::fs::read(&resumed_path).unwrap();
    assert_eq!(rejoined, full, "resume diverged from uninterrupted run");

    for p in [&full_path, &part_path, &resumed_path] {
        std::fs::remove_file(p).ok();
    }
}
