//! `repro` — regenerate every table and figure of the Phantom paper.
//!
//! ```text
//! repro table1            Table 1  (training x victim x uarch stages)
//! repro figure6           Figure 6 (uop-cache page-offset sweep)
//! repro figure7           Figure 7 (recovered BTB functions)
//! repro table2 [bits]     Table 2  (covert channel accuracy / rate)
//! repro table3 [runs]     Table 3  (kernel image KASLR)
//! repro table4 [runs]     Table 4  (physmap KASLR)
//! repro table5 [runs]     Table 5  (physical address)
//! repro mds [bytes]       §7.4     (MDS-gadget kernel leak)
//! repro o4                O4       (SuppressBPOnNonBr)
//! repro o5                O5       (AutoIBRS)
//! repro software          §8.2     (lfence / RSB stuffing / SLS padding)
//! repro spectre           baseline (conventional Spectre-V2 comparison)
//! repro ablation          design-parameter sweeps (latency / ways / noise)
//! repro overhead          §6.3     (mitigation overhead suite)
//! repro gadgets           §9.1     (gadget census)
//! repro all               everything above, quick settings
//! ```
//!
//! Environment: `PHANTOM_FULL=1` uses the paper's full protocol sizes
//! (all 488/25 600 slots, 4096 bits/bytes, 10–100 runs) — slow.

use phantom::gadgets::{census, generate_corpus, CorpusConfig};
use phantom::mitigations::{
    lfence_gadget_protection, o4_suppress_bp_on_non_br, o5_auto_ibrs_fetch,
    rsb_stuffing_protection, sls_padding_protection, suppress_overhead,
};
use phantom::report;
use phantom::spectre::{spectre_v2_leak, window_comparison};
use phantom::UarchProfile;
use phantom_bench::{
    run_figure6, run_figure7, run_mds, run_table1, run_table2, run_table3, run_table4,
    run_table5,
};

fn full() -> bool {
    std::env::var("PHANTOM_FULL").is_ok_and(|v| v == "1")
}

fn table1() -> Result<(), phantom_bench::RunnerError> {
    let cells = run_table1(0)?;
    print!("{}", report::render_table1(&cells));
    Ok(())
}

fn figure6() -> Result<(), phantom_bench::RunnerError> {
    for profile in [UarchProfile::zen2(), UarchProfile::zen4()] {
        println!("[{}]", profile.name);
        let step = if full() { 0x40 } else { 0x100 };
        let points = run_figure6(profile, step)?;
        print!("{}", report::render_figure6(&points));
    }
    Ok(())
}

fn figure7() {
    let samples = if full() { 48 } else { 24 };
    let fig = run_figure7(samples, 0);
    print!("{}", report::render_figure7(&fig));
}

fn table2(bits: usize) -> Result<(), phantom_bench::RunnerError> {
    let rows = run_table2(bits, 0)?;
    print!("{}", report::render_table2(&rows));
    Ok(())
}

fn table3(runs: usize) -> Result<(), phantom_bench::RunnerError> {
    let slots = if full() { 0 } else { 64 };
    for p in [UarchProfile::zen2(), UarchProfile::zen3(), UarchProfile::zen4()] {
        let name = p.name;
        let results = run_table3(p, runs, slots, 100)?;
        print!("{}", report::render_table3(name, &results));
    }
    Ok(())
}

fn table4(runs: usize) -> Result<(), phantom_bench::RunnerError> {
    let slots = if full() { 0 } else { 64 };
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name;
        let results = run_table4(p, runs, slots, 200)?;
        print!("{}", report::render_table4(name, &results));
    }
    Ok(())
}

fn table5(runs: usize) -> Result<(), phantom_bench::RunnerError> {
    // The paper pairs Zen 1 with 8 GiB and Zen 2 with 64 GiB.
    let configs: [(UarchProfile, u64); 2] = if full() {
        [(UarchProfile::zen1(), 8 << 30), (UarchProfile::zen2(), 64 << 30)]
    } else {
        [(UarchProfile::zen1(), 1 << 30), (UarchProfile::zen2(), 4 << 30)]
    };
    for (p, bytes) in configs {
        let name = p.name;
        let results = run_table5(p, bytes, runs, 300)?;
        print!("{}", report::render_table5(name, bytes >> 30, &results));
    }
    Ok(())
}

fn mds(bytes: usize) -> Result<(), phantom_bench::RunnerError> {
    let runs = if full() { 10 } else { 3 };
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name;
        println!("[{name}] over {runs} reboots:");
        for r in run_mds(p.clone(), bytes, runs, 400)? {
            print!("  {}", report::render_mds(&r));
        }
    }
    Ok(())
}

fn o4() -> Result<(), phantom_bench::RunnerError> {
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name;
        let o = o4_suppress_bp_on_non_br(p)?;
        println!(
            "O4 [{name}]: baseline {} -> suppressed {} (IF={}, ID={}, EX={})",
            o.baseline.stage(),
            o.suppressed.stage(),
            o.suppressed.fetched,
            o.suppressed.decoded,
            o.suppressed.executed,
        );
    }
    println!("=> SuppressBPOnNonBr stops transient execution but not IF/ID (and is absent on Zen 1).");
    Ok(())
}

fn o5() -> Result<(), phantom_bench::RunnerError> {
    let fetched = o5_auto_ibrs_fetch(0)?;
    println!("O5 [Zen 4, AutoIBRS on]: cross-privilege transient fetch observed = {fetched}");
    println!("=> AutoIBRS does not prevent IF of cross-privilege branch targets (P1 unaffected).");
    Ok(())
}

fn software() -> Result<(), phantom_bench::RunnerError> {
    let (u, p) = lfence_gadget_protection(UarchProfile::zen2())?;
    println!("lfence at gadget entry [Zen 2]: transient load unprotected={u} protected={p}");
    let (u, p) = rsb_stuffing_protection(UarchProfile::zen2())?;
    println!("RSB stuffing [Zen 2]:           phantom fetch unprotected={u} protected={p}");
    let (u, p) = sls_padding_protection(UarchProfile::zen1())?;
    println!("SLS padding [Zen]:              straight-line load unpadded={u} padded={p}");
    println!("=> software mitigations work where they are PLACED; §8.2's point is that");
    println!("   pre-decode speculation makes the set of placement sites intractable.");
    Ok(())
}

fn ablation() -> Result<(), phantom_bench::RunnerError> {
    println!("resteer-latency sweep (Zen 2 shape):");
    for p in phantom::ablation::resteer_latency_sweep(&[4, 5, 6, 8, 10, 12, 16])? {
        println!("  latency {:>2} cycles -> spare {:>2} uops -> {}", p.latency, p.spare_uops, p.stage);
    }
    println!("BTB associativity sweep (8 same-bucket entries):");
    for p in phantom::ablation::btb_associativity_sweep(&[1, 2, 4, 8], 8) {
        println!("  {} way(s) -> {:.0}% survive", p.ways, p.survival * 100.0);
    }
    println!("noise-accuracy curve (fetch channel, 128 bits):");
    for p in phantom::ablation::noise_accuracy_curve(&[0.0, 0.01, 0.03, 0.1, 0.3], 128, 1)? {
        println!("  spurious {:>4.0}% -> accuracy {:.1}%", p.spurious_rate * 100.0, p.accuracy * 100.0);
    }
    Ok(())
}

fn spectre() -> Result<(), phantom_bench::RunnerError> {
    println!("baseline: conventional Spectre-V2 vs PHANTOM windows");
    for p in UarchProfile::all() {
        let w = window_comparison(&p);
        let leak = if p.indirect_victim_blind {
            "n/a (blind)".to_string()
        } else {
            let r = spectre_v2_leak(p.clone(), 0x5c)?;
            if r.correct() { "leaks".into() } else { "fails".into() }
        };
        println!(
            "  {:<26} spectre {:>2} uops ({leak}), phantom {} uops",
            p.name, w.spectre_uops, w.phantom_uops
        );
    }
    Ok(())
}

fn overhead() {
    let r = suppress_overhead(UarchProfile::zen2());
    print!("{}", report::render_overhead(&r));
}

fn gadgets() {
    let corpus = generate_corpus(&CorpusConfig::default());
    let c = census(&corpus);
    print!("{}", report::render_gadgets(&c));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("all");
    let num = |i: usize, default: usize| -> usize {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };

    let result: Result<(), phantom_bench::RunnerError> = match cmd {
        "table1" => table1(),
        "figure6" => figure6(),
        "figure7" => {
            figure7();
            Ok(())
        }
        "table2" => table2(num(2, if full() { 4096 } else { 256 })),
        "table3" => table3(num(2, if full() { 100 } else { 5 })),
        "table4" => table4(num(2, if full() { 10 } else { 3 })),
        "table5" => table5(num(2, if full() { 100 } else { 3 })),
        "mds" => mds(num(2, if full() { 4096 } else { 64 })),
        "o4" => o4(),
        "o5" => o5(),
        "software" => software(),
        "spectre" => spectre(),
        "ablation" => ablation(),
        "overhead" => {
            overhead();
            Ok(())
        }
        "gadgets" => {
            gadgets();
            Ok(())
        }
        "all" => table1()
            .and_then(|()| figure6())
            .map(|()| figure7())
            .and_then(|()| table2(256))
            .and_then(|()| table3(3))
            .and_then(|()| table4(2))
            .and_then(|()| table5(2))
            .and_then(|()| mds(48))
            .and_then(|()| o4())
            .and_then(|()| o5())
            .and_then(|()| software())
            .and_then(|()| spectre())
            .and_then(|()| ablation())
            .map(|()| overhead())
            .map(|()| gadgets()),
        other => {
            eprintln!("unknown command {other:?}; see `repro --help` (module docs)");
            std::process::exit(2);
        }
    };

    if let Err(e) = result {
        eprintln!("repro {cmd} failed: {e}");
        std::process::exit(1);
    }
}
