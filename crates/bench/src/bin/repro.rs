//! `repro` — regenerate every table and figure of the Phantom paper.
//!
//! ```text
//! repro table1            Table 1  (training x victim x uarch stages)
//! repro figure6           Figure 6 (uop-cache page-offset sweep)
//! repro figure7           Figure 7 (recovered BTB functions)
//! repro table2 [bits]     Table 2  (covert channel accuracy / rate)
//! repro table3 [runs]     Table 3  (kernel image KASLR)
//! repro table4 [runs]     Table 4  (physmap KASLR)
//! repro table5 [runs]     Table 5  (physical address)
//! repro mds [bytes]       §7.4     (MDS-gadget kernel leak)
//! repro o4                O4       (SuppressBPOnNonBr)
//! repro o5                O5       (AutoIBRS)
//! repro software          §8.2     (lfence / RSB stuffing / SLS padding)
//! repro spectre           baseline (conventional Spectre-V2 comparison)
//! repro ablation          design-parameter sweeps (latency / ways / noise)
//! repro noise-sweep [bits] noise-robustness sweep (adaptive channel
//!                         accuracy / probe spend per noise knob)
//! repro pht-channel [bits] BranchSpectre-style secret recovery through
//!                         the conditional predictor's counters
//! repro overhead          §6.3     (mitigation overhead suite)
//! repro gadgets           §9.1     (gadget census)
//! repro list-uarchs       registered microarchitectures
//! repro all               everything above, quick settings
//! ```
//!
//! `--spec <file>` registers user-defined uarch specs next to the
//! builtins (alone, it smoke-sweeps the file's uarches through
//! Figure 6); `--uarch <names>` picks Figure 6's sweep set (default:
//! the paper's zen2,zen4 plot).
//!
//! Environment: `PHANTOM_FULL=1` uses the paper's full protocol sizes
//! (all 488/25 600 slots, 4096 bits/bytes, 10–100 runs) — slow.
//! `PHANTOM_THREADS=n` pins the trial runner's thread count (default:
//! all cores); results are identical at any thread count.
//!
//! Tables render on stdout; per-sweep wall-clock notes go to stderr so
//! piped output stays byte-for-byte reproducible.

use phantom::ablation::NoiseSweepConfig;
use phantom::gadgets::{census, generate_corpus, CorpusConfig};
use phantom::mitigations::{
    lfence_gadget_protection, o4_suppress_bp_on_non_br, o5_auto_ibrs_fetch,
    rsb_stuffing_protection, sls_padding_protection, suppress_overhead_on,
};
use phantom::report;
use phantom::report::json::{
    diff, BenchSnapshot, NoiseSweepRecord, PhtChannelRecord, Tolerance, SCHEMA,
};
use phantom::report::value::JsonValue;
use phantom::runner::TrialRunner;
use phantom::spectre::{spectre_v2_leak, window_comparison};
use phantom::{UarchProfile, UarchRegistry};
use phantom_bench::campaign::{self, CampaignConfig};
use phantom_bench::{
    collect_snapshot, run_figure6_on, run_figure7, run_mds_on, run_noise_sweep_on,
    run_pht_channel_on, run_table1_on, run_table2_on, run_table3_on, run_table4_on, run_table5_on,
    timed, BenchConfig,
};

const USAGE: &str = "\
usage: repro [command] [n] [flags]

  table1            Table 1  (training x victim x uarch stages)
  figure6           Figure 6 (uop-cache page-offset sweep;
                    default uarches zen2,zen4 — override with --uarch)
  figure7           Figure 7 (recovered BTB functions)
  table2 [bits]     Table 2  (covert channel accuracy / rate)
  table3 [runs]     Table 3  (kernel image KASLR)
  table4 [runs]     Table 4  (physmap KASLR)
  table5 [runs]     Table 5  (physical address)
  mds [bytes]       \u{a7}7.4     (MDS-gadget kernel leak)
  o4                O4       (SuppressBPOnNonBr)
  o5                O5       (AutoIBRS)
  software          \u{a7}8.2     (lfence / RSB stuffing / SLS padding)
  spectre           baseline (conventional Spectre-V2 comparison)
  ablation          design-parameter sweeps (latency / ways / noise)
  noise-sweep [bits] noise-robustness sweep (adaptive channel accuracy,
                    probe spend, abstentions per noise knob; --json
                    writes the records, --baseline gates the quiet end)
  pht-channel [bits] PHT channel: BranchSpectre-style secret recovery
                    through the conditional predictor's counters alone
                    (no cache probe), one row per builtin AMD part;
                    --json writes the records, --baseline gates accuracy
  overhead          \u{a7}6.3     (mitigation overhead suite)
  gadgets           \u{a7}9.1     (gadget census)
  serve             campaign service: run the (uarch x scenario x
                    noise-point) job grid — 60 jobs, 15360 trials by
                    default — streaming one JSONL record per job
  discover [budget] adversarial fuzz over the (program x spec) space:
                    seeded victim programs, mutated uarch specs and
                    aliased training sites, checked for decoder-
                    detectable mispredictions reaching stage >= ID,
                    minimized, GF(2)-confirmed, written as JSONL
  list-uarchs       list registered microarchitectures (builtins + --spec)
  bench             run everything, write a machine-readable snapshot
  all               everything above, quick settings (default)

flags:
  --uarch <names>     comma-separated uarch keys or display names
                      (repeatable); filters figure6's sweep and the
                      serve grid
  --spec <file>       register uarch specs from a phantom-uarch-spec v1
                      file (repeatable); files may carry an optional
                      `cbp` block describing the conditional predictor's
                      set-indexed, history-mixed geometry (omitting it
                      keeps the legacy per-PC table); alone, runs
                      figure6 over the file's uarches as a smoke sweep
  --workers <n>       trial-runner thread count for this invocation;
                      takes precedence over PHANTOM_THREADS (the env
                      var is not consulted — or validated — when
                      --workers is given)

flags (serve + discover):
  --out <path>        JSONL output path (default campaign.jsonl for
                      serve, discover.jsonl for discover)
  --seed <n>          base seed (default 0)

flags (discover):
  --corpus <dir>      also write the minimized, oracle-confirmed leaks
                      as phantom-fuzz-case v1 files under <dir>

flags (serve):
  --resume <path>     resume from a partial JSONL file: its longest
                      valid prefix is kept byte-for-byte, the torn or
                      foreign tail is dropped, and the remaining jobs
                      are re-run; the final file is byte-identical to
                      an uninterrupted run
  --bits <n>          bits per transfer, i.e. trials per job (default 256)
  --ab                instead of the grid, run one representative job
                      twice — forking the post-boot checkpoint per
                      trial vs re-booting per trial — and print both
                      wall-clocks

flags (bench; --json also implies bench when given alone):
  --json <path>       snapshot output path (default BENCH_phantom.json)
  --baseline <path>   diff against a committed snapshot; exit 1 on any
                      regression beyond tolerance
  --tolerance <pct>   uniform tolerance: accuracy may drop <pct>
                      percentage points, simulated cycles may grow
                      <pct> percent (default: 1pp accuracy, 5% cycles)
  --host-meta         include host-volatile metadata (threads, wall
                      clocks) in a `host` section; breaks byte
                      reproducibility across hosts, ignored by diffs

environment:
  PHANTOM_FULL=1     paper's full protocol sizes (slow)
  PHANTOM_THREADS=n  pin the trial runner's thread count (overridden
                     by --workers); results are identical at any
                     thread count";

/// Print a CLI-usage complaint and exit 2 (the CLI-error code, as for
/// bad PHANTOM_THREADS). Never panics: a wrong invocation is the
/// user's error, not the program's.
fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn full() -> bool {
    std::env::var("PHANTOM_FULL").is_ok_and(|v| v == "1")
}

fn runner() -> TrialRunner {
    match std::env::var("PHANTOM_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => TrialRunner::with_threads(n),
            _ => {
                eprintln!(
                    "invalid PHANTOM_THREADS {v:?}: expected a positive integer thread count"
                );
                std::process::exit(2);
            }
        },
        Err(std::env::VarError::NotPresent) => TrialRunner::new(),
        Err(e) => {
            eprintln!("invalid PHANTOM_THREADS: {e}");
            std::process::exit(2);
        }
    }
}

fn table1(r: &TrialRunner) -> Result<(), phantom_bench::RunnerError> {
    let t = timed(r, |r| run_table1_on(r, 0))?;
    print!("{}", report::render_table1(&t.result));
    eprintln!("[table1: {}]", t.wall_note());
    Ok(())
}

/// Figure 6 over an explicit uarch set. The default mirrors the paper's
/// plot (Zen 2 and Zen 4); `--uarch` / `--spec` widen or narrow it.
fn figure6(r: &TrialRunner, profiles: &[UarchProfile]) -> Result<(), phantom_bench::RunnerError> {
    for profile in profiles {
        let profile = profile.clone();
        let name = profile.name.clone();
        println!("[{name}]");
        let step = if full() { 0x40 } else { 0x100 };
        let t = timed(r, |r| run_figure6_on(r, profile.clone(), step))?;
        print!("{}", report::render_figure6(&t.result));
        eprintln!("[figure6 {name}: {}]", t.wall_note());
    }
    Ok(())
}

/// `list-uarchs`: every registered spec, builtin or loaded via `--spec`,
/// with compact BTB and CBP geometry descriptors so predictor changes
/// made in a spec's `cbp` block are visible at a glance.
fn list_uarchs(registry: &UarchRegistry) {
    println!(
        "{:<10} {:<26} {:<22} {:<6} {:<12} {:<20} {}",
        "key", "name", "model", "vendor", "btb", "cbp", "phantom-exec-uops"
    );
    for spec in registry.specs() {
        let profile = spec.profile();
        println!(
            "{:<10} {:<26} {:<22} {:<6} {:<12} {:<20} {}",
            spec.key,
            spec.name,
            spec.model,
            spec.vendor.to_string().to_ascii_lowercase(),
            profile.btb_scheme.summary(),
            profile.cbp_scheme.summary(),
            spec.phantom_exec_uops
        );
    }
}

fn figure7() {
    let samples = if full() { 48 } else { 24 };
    let start = std::time::Instant::now();
    let fig = run_figure7(samples, 0);
    print!("{}", report::render_figure7(&fig));
    eprintln!("[figure7: wall {:.2}s]", start.elapsed().as_secs_f64());
}

fn table2(r: &TrialRunner, bits: usize) -> Result<(), phantom_bench::RunnerError> {
    let t = timed(r, |r| run_table2_on(r, bits, 0))?;
    print!("{}", report::render_table2(&t.result));
    eprintln!("[table2: {}]", t.wall_note());
    Ok(())
}

fn table3(r: &TrialRunner, runs: usize) -> Result<(), phantom_bench::RunnerError> {
    let slots = if full() { 0 } else { 64 };
    for p in [
        UarchProfile::zen2(),
        UarchProfile::zen3(),
        UarchProfile::zen4(),
    ] {
        let name = p.name.clone();
        let t = timed(r, |r| run_table3_on(r, p.clone(), runs, slots, 100))?;
        print!("{}", report::render_table3(&name, &t.result));
        eprintln!("[table3 {name}: {}]", t.wall_note());
    }
    Ok(())
}

fn table4(r: &TrialRunner, runs: usize) -> Result<(), phantom_bench::RunnerError> {
    let slots = if full() { 0 } else { 64 };
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name.clone();
        let t = timed(r, |r| run_table4_on(r, p.clone(), runs, slots, 200))?;
        print!("{}", report::render_table4(&name, &t.result));
        eprintln!("[table4 {name}: {}]", t.wall_note());
    }
    Ok(())
}

fn table5(r: &TrialRunner, runs: usize) -> Result<(), phantom_bench::RunnerError> {
    // The paper pairs Zen 1 with 8 GiB and Zen 2 with 64 GiB.
    let configs: [(UarchProfile, u64); 2] = if full() {
        [
            (UarchProfile::zen1(), 8 << 30),
            (UarchProfile::zen2(), 64 << 30),
        ]
    } else {
        [
            (UarchProfile::zen1(), 1 << 30),
            (UarchProfile::zen2(), 4 << 30),
        ]
    };
    for (p, bytes) in configs {
        let name = p.name.clone();
        let t = timed(r, |r| run_table5_on(r, p.clone(), bytes, runs, 300))?;
        print!("{}", report::render_table5(&name, bytes >> 30, &t.result));
        eprintln!("[table5 {name}: {}]", t.wall_note());
    }
    Ok(())
}

fn mds(r: &TrialRunner, bytes: usize) -> Result<(), phantom_bench::RunnerError> {
    let runs = if full() { 10 } else { 3 };
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name.clone();
        println!("[{name}] over {runs} reboots:");
        let t = timed(r, |r| run_mds_on(r, p.clone(), bytes, runs, 400))?;
        for row in &t.result {
            print!("  {}", report::render_mds(row));
        }
        eprintln!("[mds {name}: {}]", t.wall_note());
    }
    Ok(())
}

fn o4() -> Result<(), phantom_bench::RunnerError> {
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name.clone();
        let o = o4_suppress_bp_on_non_br(p)?;
        println!(
            "O4 [{name}]: baseline {} -> suppressed {} (IF={}, ID={}, EX={})",
            o.baseline.stage(),
            o.suppressed.stage(),
            o.suppressed.fetched,
            o.suppressed.decoded,
            o.suppressed.executed,
        );
    }
    println!(
        "=> SuppressBPOnNonBr stops transient execution but not IF/ID (and is absent on Zen 1)."
    );
    Ok(())
}

fn o5() -> Result<(), phantom_bench::RunnerError> {
    let fetched = o5_auto_ibrs_fetch(0)?;
    println!("O5 [Zen 4, AutoIBRS on]: cross-privilege transient fetch observed = {fetched}");
    println!("=> AutoIBRS does not prevent IF of cross-privilege branch targets (P1 unaffected).");
    Ok(())
}

fn software() -> Result<(), phantom_bench::RunnerError> {
    let (u, p) = lfence_gadget_protection(UarchProfile::zen2())?;
    println!("lfence at gadget entry [Zen 2]: transient load unprotected={u} protected={p}");
    let (u, p) = rsb_stuffing_protection(UarchProfile::zen2())?;
    println!("RSB stuffing [Zen 2]:           phantom fetch unprotected={u} protected={p}");
    let (u, p) = sls_padding_protection(UarchProfile::zen1())?;
    println!("SLS padding [Zen]:              straight-line load unpadded={u} padded={p}");
    println!("=> software mitigations work where they are PLACED; §8.2's point is that");
    println!("   pre-decode speculation makes the set of placement sites intractable.");
    Ok(())
}

fn ablation() -> Result<(), phantom_bench::RunnerError> {
    println!("resteer-latency sweep (Zen 2 shape):");
    for p in phantom::ablation::resteer_latency_sweep(&[4, 5, 6, 8, 10, 12, 16])? {
        println!(
            "  latency {:>2} cycles -> spare {:>2} uops -> {}",
            p.latency, p.spare_uops, p.stage
        );
    }
    println!("BTB associativity sweep (8 same-bucket entries):");
    for p in phantom::ablation::btb_associativity_sweep(&[1, 2, 4, 8], 8) {
        println!("  {} way(s) -> {:.0}% survive", p.ways, p.survival * 100.0);
    }
    println!("noise-accuracy curve (fetch channel, 128 bits):");
    for p in phantom::ablation::noise_accuracy_curve(&[0.0, 0.01, 0.03, 0.1, 0.3], 128, 1)? {
        println!(
            "  spurious {:>4.0}% -> accuracy {:.1}%",
            p.spurious_rate * 100.0,
            p.accuracy * 100.0
        );
    }
    Ok(())
}

/// The noise-robustness sweep (`noise-sweep`): the adaptive fetch
/// channel driven through each noise knob, one knob nonzero per point.
/// `--json` writes the records under the bench schema; `--baseline`
/// gates the quiet (`value == 0`) points against a committed snapshot
/// and exits 1 on regression, mirroring the `bench` diff gate.
fn noise_sweep(
    r: &TrialRunner,
    cfg: &NoiseSweepConfig,
    flags: &BenchFlags,
    json_given: bool,
) -> Result<(), phantom_bench::RunnerError> {
    let t = timed(r, |r| run_noise_sweep_on(r, cfg))?;
    print!("{}", report::render_noise_sweep(&t.result));
    eprintln!("[noise-sweep: {}]", t.wall_note());
    let records: Vec<NoiseSweepRecord> = t.result.iter().map(NoiseSweepRecord::from).collect();

    if json_given {
        let mut root = JsonValue::object();
        root.set("schema", JsonValue::Str(SCHEMA.to_string()));
        root.set(
            "noise_sweep",
            JsonValue::Array(records.iter().map(NoiseSweepRecord::to_json).collect()),
        );
        std::fs::write(&flags.json, root.to_pretty_string())
            .map_err(|e| format!("write {}: {e}", flags.json.display()))?;
        eprintln!("[noise-sweep: wrote {}]", flags.json.display());
    }

    if let Some(baseline_path) = &flags.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        let baseline = BenchSnapshot::from_json_str(&text)?;
        let tol = match flags.tolerance {
            Some(pct) => Tolerance::uniform(pct),
            None => Tolerance::default(),
        };
        let mut regressions: Vec<String> = Vec::new();
        let base_sweep = baseline.noise_sweep.as_deref().unwrap_or(&[]);
        for base_p in base_sweep.iter().filter(|p| p.is_quiet()) {
            match records
                .iter()
                .find(|c| c.axis == base_p.axis && c.value == base_p.value)
            {
                Some(cur_p) if (base_p.accuracy - cur_p.accuracy) * 100.0 > tol.accuracy_pp => {
                    regressions.push(format!(
                        "noise_sweep[{} = 0].accuracy: {} -> {}",
                        base_p.axis, base_p.accuracy, cur_p.accuracy
                    ));
                }
                None => regressions.push(format!("noise_sweep[{} = 0] missing", base_p.axis)),
                _ => {}
            }
        }
        if regressions.is_empty() {
            println!(
                "no quiet-end regressions against {} (tolerance: {}pp accuracy, {} quiet point(s))",
                baseline_path.display(),
                tol.accuracy_pp,
                base_sweep.iter().filter(|p| p.is_quiet()).count()
            );
        } else {
            eprintln!(
                "{} regression(s) against {}:",
                regressions.len(),
                baseline_path.display()
            );
            for reg in &regressions {
                eprintln!("  {reg}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

/// The PHT channel (`pht-channel`): BranchSpectre-style secret recovery
/// through the conditional predictor's counters alone, one row per
/// builtin AMD part. `--json` writes the records under the bench
/// schema; `--baseline` gates per-uarch accuracy against a committed
/// snapshot and exits 1 on regression, mirroring the `bench` diff gate.
fn pht_channel(
    r: &TrialRunner,
    bits: usize,
    flags: &BenchFlags,
    json_given: bool,
) -> Result<(), phantom_bench::RunnerError> {
    let t = timed(r, |r| run_pht_channel_on(r, bits, 600))?;
    println!("PHT channel ({bits} bits, realistic noise, no cache probe):");
    println!(
        "  {:<26} {:>12} {:>9} {:>10} {:>8} {:>6} {:>6}",
        "uarch", "alias-flip", "accuracy", "bits/s", "probes", "abst", "conf"
    );
    for row in &t.result {
        println!(
            "  {:<26} {:>12} {:>8.1}% {:>10.0} {:>8} {:>6} {:>6.2}",
            row.uarch.as_str(),
            format!("{:#x}", row.flip_mask),
            row.accuracy * 100.0,
            row.bits_per_sec,
            row.probes,
            row.abstentions,
            row.mean_confidence,
        );
    }
    eprintln!("[pht-channel: {}]", t.wall_note());
    let records: Vec<PhtChannelRecord> = t.result.iter().map(PhtChannelRecord::from).collect();

    if json_given {
        let mut root = JsonValue::object();
        root.set("schema", JsonValue::Str(SCHEMA.to_string()));
        root.set(
            "pht_channel",
            JsonValue::Array(records.iter().map(PhtChannelRecord::to_json).collect()),
        );
        std::fs::write(&flags.json, root.to_pretty_string())
            .map_err(|e| format!("write {}: {e}", flags.json.display()))?;
        eprintln!("[pht-channel: wrote {}]", flags.json.display());
    }

    if let Some(baseline_path) = &flags.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        let baseline = BenchSnapshot::from_json_str(&text)?;
        let tol = match flags.tolerance {
            Some(pct) => Tolerance::uniform(pct),
            None => Tolerance::default(),
        };
        let mut regressions: Vec<String> = Vec::new();
        let base_rows = baseline.pht_channel.as_deref().unwrap_or(&[]);
        for base_row in base_rows {
            match records.iter().find(|c| c.uarch == base_row.uarch) {
                Some(cur) if (base_row.accuracy - cur.accuracy) * 100.0 > tol.accuracy_pp => {
                    regressions.push(format!(
                        "pht_channel[{}].accuracy: {} -> {}",
                        base_row.uarch, base_row.accuracy, cur.accuracy
                    ));
                }
                None => regressions.push(format!("pht_channel[{}] missing", base_row.uarch)),
                _ => {}
            }
        }
        if regressions.is_empty() {
            println!(
                "no pht-channel regressions against {} (tolerance: {}pp accuracy, {} baseline row(s))",
                baseline_path.display(),
                tol.accuracy_pp,
                base_rows.len()
            );
        } else {
            eprintln!(
                "{} regression(s) against {}:",
                regressions.len(),
                baseline_path.display()
            );
            for reg in &regressions {
                eprintln!("  {reg}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

fn spectre() -> Result<(), phantom_bench::RunnerError> {
    println!("baseline: conventional Spectre-V2 vs PHANTOM windows");
    for p in UarchProfile::all() {
        let w = window_comparison(&p);
        let leak = if p.indirect_victim_blind {
            "n/a (blind)".to_string()
        } else {
            let r = spectre_v2_leak(p.clone(), 0x5c)?;
            if r.correct() {
                "leaks".into()
            } else {
                "fails".into()
            }
        };
        println!(
            "  {:<26} spectre {:>2} uops ({leak}), phantom {} uops",
            p.name, w.spectre_uops, w.phantom_uops
        );
    }
    Ok(())
}

fn overhead(r: &TrialRunner) -> Result<(), phantom_bench::RunnerError> {
    let t = timed(r, |r| {
        Ok::<_, phantom_bench::RunnerError>(suppress_overhead_on(r, UarchProfile::zen2()))
    })?;
    print!("{}", report::render_overhead(&t.result));
    eprintln!("[overhead: {}]", t.wall_note());
    Ok(())
}

fn gadgets() {
    let corpus = generate_corpus(&CorpusConfig::default());
    let c = census(&corpus);
    print!("{}", report::render_gadgets(&c));
}

/// CLI flags for the `serve` campaign service.
struct ServeFlags {
    out: std::path::PathBuf,
    resume: Option<std::path::PathBuf>,
    bits: Option<usize>,
    seed: u64,
    ab: bool,
}

/// The campaign service: expand the job grid, skip what a `--resume`
/// file already finished, and stream the rest as JSONL. All progress
/// goes to stderr; the output file carries records only.
fn serve(
    r: &TrialRunner,
    registry: &UarchRegistry,
    uarch_names: &[String],
    sf: &ServeFlags,
) -> Result<(), phantom_bench::RunnerError> {
    let mut cfg = CampaignConfig::default_grid(registry);
    if !uarch_names.is_empty() {
        cfg.uarches = uarch_names
            .iter()
            .map(|name| match registry.get(name) {
                Some(spec) => (spec.key.clone(), spec.profile()),
                None => usage_error(&format!("unknown uarch {name:?} (see `repro list-uarchs`)")),
            })
            .collect();
    }
    if let Some(bits) = sf.bits {
        cfg.bits = bits;
    }
    cfg.seed = sf.seed;

    if sf.ab {
        let bits = cfg.bits.min(64);
        eprintln!("[serve --ab: {bits}-bit zen2 fetch transfer, quiet noise, both arms]");
        let ab = campaign::ab_compare(r, bits, cfg.seed)?;
        println!(
            "fork-per-trial: {:.3}s   boot-per-trial: {:.3}s   ({:.1}x slower)   accuracy {:.4} in both arms",
            ab.fork_secs,
            ab.boot_secs,
            ab.speedup(),
            ab.accuracy
        );
        return Ok(());
    }

    let jobs = campaign::jobs(&cfg);
    let (skip, prefix) = match &sf.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| usage_error(&format!("--resume {}: {e}", path.display())));
            let rp = campaign::resume_prefix(&text, &jobs);
            eprintln!(
                "[serve: resuming from {} — {}/{} jobs already complete]",
                path.display(),
                rp.done,
                jobs.len()
            );
            (rp.done, rp.prefix)
        }
        None => (0, String::new()),
    };

    use std::io::Write;
    // Read the resume file before truncating the output: `--resume` and
    // `--out` may name the same path (resume in place).
    let file = std::fs::File::create(&sf.out)
        .unwrap_or_else(|e| usage_error(&format!("--out {}: {e}", sf.out.display())));
    let mut out = std::io::BufWriter::new(file);
    out.write_all(prefix.as_bytes())
        .map_err(|e| format!("write {}: {e}", sf.out.display()))?;

    let start = std::time::Instant::now();
    campaign::run_campaign(r, &cfg, skip, &mut out, &mut |done, total, id| {
        eprintln!("[serve: {done}/{total} {id}]");
    })?;
    eprintln!(
        "[serve: wrote {} — {} jobs, {} trials, {:.2}s on {} threads]",
        sf.out.display(),
        jobs.len(),
        cfg.total_trials(),
        start.elapsed().as_secs_f64(),
        r.threads()
    );
    Ok(())
}

/// CLI flags shared by `bench` / `--json`.
struct BenchFlags {
    json: std::path::PathBuf,
    baseline: Option<std::path::PathBuf>,
    tolerance: Option<f64>,
    host_meta: bool,
}

fn bench(r: &TrialRunner, flags: &BenchFlags) -> Result<(), phantom_bench::RunnerError> {
    let cfg = BenchConfig {
        full: full(),
        seed: 0,
        host_meta: flags.host_meta,
    };
    let start = std::time::Instant::now();
    let snap = collect_snapshot(r, &cfg)?;
    std::fs::write(&flags.json, snap.to_json_string())
        .map_err(|e| format!("write {}: {e}", flags.json.display()))?;
    eprintln!(
        "[bench: wrote {} in {:.2}s on {} threads]",
        flags.json.display(),
        start.elapsed().as_secs_f64(),
        r.threads()
    );

    if let Some(baseline_path) = &flags.baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
        let baseline = BenchSnapshot::from_json_str(&text)?;
        let tol = match flags.tolerance {
            Some(pct) => Tolerance::uniform(pct),
            None => Tolerance::default(),
        };
        let regressions = diff(&baseline, &snap, &tol);
        if regressions.is_empty() {
            println!(
                "no regressions against {} (tolerance: {}pp accuracy, {}% cycles)",
                baseline_path.display(),
                tol.accuracy_pp,
                tol.cycles_pct
            );
        } else {
            eprintln!(
                "{} regression(s) against {}:",
                regressions.len(),
                baseline_path.display()
            );
            for reg in &regressions {
                eprintln!("  {reg}");
            }
            // The raw hot-path counters make a hit-rate regression
            // diagnosable from CI logs alone.
            eprintln!("perf counters (baseline -> current):");
            let (b, c) = (&baseline.perf, &snap.perf);
            for (name, bv, cv) in [
                (
                    "decode_cache_hits",
                    b.decode_cache_hits,
                    c.decode_cache_hits,
                ),
                (
                    "decode_cache_misses",
                    b.decode_cache_misses,
                    c.decode_cache_misses,
                ),
                ("tlb_hits", b.tlb_hits, c.tlb_hits),
                ("tlb_misses", b.tlb_misses, c.tlb_misses),
                ("cow_faults", b.cow_faults, c.cow_faults),
                (
                    "cow_frames_shared",
                    b.cow_frames_shared,
                    c.cow_frames_shared,
                ),
                (
                    "restore_frames_copied",
                    b.restore_frames_copied,
                    c.restore_frames_copied,
                ),
                ("trial_retries", b.trial_retries, c.trial_retries),
                ("trace_hits", b.trace_hits, c.trace_hits),
                ("trace_bailouts", b.trace_bailouts, c.trace_bailouts),
                (
                    "trace_invalidations",
                    b.trace_invalidations,
                    c.trace_invalidations,
                ),
            ] {
                let marker = if bv == cv { "" } else { "  <-- changed" };
                eprintln!("  {name}: {bv} -> {cv}{marker}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

/// Run the discover fuzzer: evaluate `budget` seeded (program × spec)
/// candidates, print the findings, write the JSONL report, and
/// optionally emit the minimized corpus.
fn discover(
    r: &TrialRunner,
    budget: usize,
    seed: u64,
    out: &std::path::Path,
    corpus: Option<&std::path::Path>,
) -> Result<(), phantom_bench::RunnerError> {
    use phantom_bench::discover::{discover_jsonl, run_discover_on, train_id, DiscoverConfig};

    let cfg = DiscoverConfig { budget, seed };
    let t = timed(r, |r| run_discover_on(r, cfg))?;
    let report = &t.result;
    println!("§fuzz — adversarial (program × spec) discovery, seed {seed}");
    println!(
        "{} trials: {} leaks ({} beyond the Table 1 grid), {} quiet, {} rejected, {} faulted",
        report.budget,
        report.findings.len(),
        report.findings.iter().filter(|f| f.beyond_table1).count(),
        report.quiet,
        report.rejected_total(),
        report.faulted,
    );
    for (slug, count) in &report.rejected {
        println!("  rejected[{slug}] = {count}");
    }
    for f in &report.findings {
        println!(
            "  #{:04} {:<14} train {:<8} delta {:#014x} stage {:<2} oracle {} {}",
            f.index,
            f.case.spec.key,
            train_id(f.case.train),
            f.case.delta,
            f.stage,
            if f.oracle_confirmed { "ok" } else { "??" },
            if f.beyond_table1 {
                "[beyond-table1]"
            } else {
                ""
            },
        );
    }
    std::fs::write(out, discover_jsonl(&report))?;
    if let Some(dir) = corpus {
        let paths = phantom_bench::discover::write_corpus(dir, &report, 16)?;
        println!(
            "[discover: wrote {} corpus case(s) under {}]",
            paths.len(),
            dir.display()
        );
    }
    println!("[discover: wrote {} — {}]", out.display(), t.wall_note());
    Ok(())
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut flags = BenchFlags {
        json: std::path::PathBuf::from("BENCH_phantom.json"),
        baseline: None,
        tolerance: None,
        host_meta: false,
    };
    let mut json_given = false;
    let mut uarch_names: Vec<String> = Vec::new();
    let mut spec_paths: Vec<std::path::PathBuf> = Vec::new();
    let mut workers: Option<usize> = None;
    let mut serve_flags = ServeFlags {
        out: std::path::PathBuf::from("campaign.jsonl"),
        resume: None,
        bits: None,
        seed: 0,
        ab: false,
    };
    let mut serve_flag_given: Option<&'static str> = None;
    // --out/--seed are shared by serve and discover; --corpus is
    // discover-only.
    let mut shared_flag_given: Option<&'static str> = None;
    let mut out_given = false;
    let mut corpus_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    let missing = |flag: &str| -> ! { usage_error(&format!("{flag} requires a value")) };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let v = args.next().unwrap_or_else(|| missing("--json"));
                flags.json = v.into();
                json_given = true;
            }
            "--baseline" => {
                let v = args.next().unwrap_or_else(|| missing("--baseline"));
                flags.baseline = Some(v.into());
            }
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| missing("--tolerance"));
                match v.parse::<f64>() {
                    Ok(pct) if pct >= 0.0 && pct.is_finite() => flags.tolerance = Some(pct),
                    _ => usage_error(&format!(
                        "invalid --tolerance {v:?}: expected a non-negative percent"
                    )),
                }
            }
            "--host-meta" => flags.host_meta = true,
            "--workers" => {
                let v = args.next().unwrap_or_else(|| missing("--workers"));
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => workers = Some(n),
                    _ => usage_error(&format!(
                        "invalid --workers {v:?}: expected a positive integer thread count"
                    )),
                }
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| missing("--out"));
                serve_flags.out = v.into();
                out_given = true;
                shared_flag_given = Some("--out");
            }
            "--corpus" => {
                let v = args.next().unwrap_or_else(|| missing("--corpus"));
                corpus_dir = Some(v.into());
            }
            "--resume" => {
                let v = args.next().unwrap_or_else(|| missing("--resume"));
                serve_flags.resume = Some(v.into());
                serve_flag_given = Some("--resume");
            }
            "--bits" => {
                let v = args.next().unwrap_or_else(|| missing("--bits"));
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => serve_flags.bits = Some(n),
                    _ => usage_error(&format!(
                        "invalid --bits {v:?}: expected a positive bit count"
                    )),
                }
                serve_flag_given = Some("--bits");
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| missing("--seed"));
                match v.parse::<u64>() {
                    Ok(n) => serve_flags.seed = n,
                    Err(_) => usage_error(&format!(
                        "invalid --seed {v:?}: expected an unsigned integer"
                    )),
                }
                shared_flag_given = Some("--seed");
            }
            "--ab" => {
                serve_flags.ab = true;
                serve_flag_given = Some("--ab");
            }
            "--uarch" => {
                let v = args.next().unwrap_or_else(|| missing("--uarch"));
                uarch_names.extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--spec" => {
                let v = args.next().unwrap_or_else(|| missing("--spec"));
                spec_paths.push(v.into());
            }
            other => positional.push(other.to_string()),
        }
    }

    // The registry resolves every uarch name: Table 1 builtins plus any
    // spec files the user loads.
    let mut registry = UarchRegistry::with_builtins();
    let mut spec_keys: Vec<String> = Vec::new();
    for path in &spec_paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => usage_error(&format!("--spec {}: {e}", path.display())),
        };
        match registry.register_text(&text) {
            Ok(keys) => spec_keys.extend(keys),
            Err(e) => usage_error(&format!("--spec {}: {e}", path.display())),
        }
    }

    let mut cmd = positional.first().map(String::as_str).unwrap_or("all");
    // `repro --json out.json` alone means: run the bench snapshot;
    // `repro --spec file.spec` alone means: smoke-sweep the file's
    // uarches through Figure 6.
    if cmd == "all" && (json_given || flags.baseline.is_some()) {
        cmd = "bench";
    } else if cmd == "all" && positional.is_empty() && !spec_keys.is_empty() {
        cmd = "figure6";
    }

    // Figure 6's sweep set: --uarch wins, then --spec file contents,
    // then the paper's zen2/zen4 plot.
    let figure6_profiles: Vec<UarchProfile> = if !uarch_names.is_empty() {
        uarch_names
            .iter()
            .map(|name| match registry.get(name) {
                Some(spec) => spec.profile(),
                None => {
                    let known: Vec<&str> =
                        registry.specs().iter().map(|s| s.key.as_str()).collect();
                    eprintln!(
                        "unknown uarch {name:?}; known: {} (see `repro list-uarchs`)",
                        known.join(", ")
                    );
                    std::process::exit(2);
                }
            })
            .collect()
    } else if !spec_keys.is_empty() {
        spec_keys
            .iter()
            .map(|key| {
                registry
                    .get(key)
                    .expect("just-registered key resolves")
                    .profile()
            })
            .collect()
    } else {
        vec![UarchProfile::zen2(), UarchProfile::zen4()]
    };

    // Serve-only flags on any other command are a usage error, not a
    // silent no-op: `repro table2 --resume f` would otherwise discard
    // the user's intent. --out/--seed are shared by serve and
    // discover; --corpus belongs to discover alone.
    if cmd != "serve" {
        if let Some(flag) = serve_flag_given {
            usage_error(&format!("{flag} is only valid with the serve command"));
        }
    }
    if cmd != "serve" && cmd != "discover" {
        if let Some(flag) = shared_flag_given {
            usage_error(&format!(
                "{flag} is only valid with the serve and discover commands"
            ));
        }
    }
    if cmd != "discover" && corpus_dir.is_some() {
        usage_error("--corpus is only valid with the discover command");
    }

    let num = |i: usize, default: usize| -> usize {
        match positional.get(i) {
            None => default,
            Some(s) => match s.parse() {
                Ok(n) => n,
                Err(_) => usage_error(&format!(
                    "invalid count {s:?} for {}: expected a non-negative integer",
                    positional[0]
                )),
            },
        }
    };
    // --workers wins outright; PHANTOM_THREADS is only consulted (and
    // only validated) when --workers is absent.
    let r = match workers {
        Some(n) => TrialRunner::with_threads(n),
        None => runner(),
    };

    let result: Result<(), phantom_bench::RunnerError> = match cmd {
        "table1" => table1(&r),
        "serve" => serve(&r, &registry, &uarch_names, &serve_flags),
        "discover" => {
            let out = if out_given {
                serve_flags.out.clone()
            } else {
                std::path::PathBuf::from("discover.jsonl")
            };
            discover(
                &r,
                num(1, if full() { 512 } else { 64 }),
                serve_flags.seed,
                &out,
                corpus_dir.as_deref(),
            )
        }
        "figure6" => figure6(&r, &figure6_profiles),
        "list-uarchs" => {
            list_uarchs(&registry);
            Ok(())
        }
        "figure7" => {
            figure7();
            Ok(())
        }
        "table2" => table2(&r, num(1, if full() { 4096 } else { 256 })),
        "table3" => table3(&r, num(1, if full() { 100 } else { 5 })),
        "table4" => table4(&r, num(1, if full() { 10 } else { 3 })),
        "table5" => table5(&r, num(1, if full() { 100 } else { 3 })),
        "mds" => mds(&r, num(1, if full() { 4096 } else { 64 })),
        "bench" => bench(&r, &flags),
        "o4" => o4(),
        "o5" => o5(),
        "software" => software(),
        "spectre" => spectre(),
        "ablation" => ablation(),
        "noise-sweep" => {
            let mut cfg = if full() {
                NoiseSweepConfig {
                    seed: 500,
                    ..Default::default()
                }
            } else {
                NoiseSweepConfig::quick(500)
            };
            cfg.bits = num(1, cfg.bits);
            noise_sweep(&r, &cfg, &flags, json_given)
        }
        "pht-channel" => pht_channel(
            &r,
            num(1, if full() { 4096 } else { 128 }),
            &flags,
            json_given,
        ),
        "overhead" => overhead(&r),
        "gadgets" => {
            gadgets();
            Ok(())
        }
        "all" => table1(&r)
            .and_then(|()| figure6(&r, &figure6_profiles))
            .map(|()| figure7())
            .and_then(|()| table2(&r, 256))
            .and_then(|()| table3(&r, 3))
            .and_then(|()| table4(&r, 2))
            .and_then(|()| table5(&r, 2))
            .and_then(|()| mds(&r, 48))
            .and_then(|()| o4())
            .and_then(|()| o5())
            .and_then(|()| software())
            .and_then(|()| spectre())
            .and_then(|()| ablation())
            .and_then(|()| noise_sweep(&r, &NoiseSweepConfig::quick(500), &flags, false))
            .and_then(|()| pht_channel(&r, 128, &flags, false))
            .and_then(|()| overhead(&r))
            .map(|()| gadgets()),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => usage_error(&format!("unknown command {other:?}")),
    };

    if let Err(e) = result {
        eprintln!("repro {cmd} failed: {e}");
        std::process::exit(1);
    }
}
