//! Shared runners for the benchmark harness and the `repro` binary.
//!
//! Each function regenerates one of the paper's tables or figures,
//! returning structured results that `repro` renders with
//! [`phantom::report`]. Run counts and search-space sizes are
//! parameterized: the paper's full protocol (100 reboots, all 488 / 25 600
//! KASLR slots) is reachable by cranking the knobs, while the defaults
//! keep a laptop run in minutes. Scaling choices are recorded in
//! `EXPERIMENTS.md`.

use phantom::attacks::{
    break_kaslr_image, break_physmap, find_physical_address, leak_kernel_memory,
    KaslrImageConfig, KaslrImageResult, MdsLeakConfig, MdsLeakResult, PhysAddrConfig,
    PhysAddrResult, PhysmapConfig, PhysmapResult,
};
use phantom::collide::{recover_figure7, BtbOracle, Figure7};
use phantom::covert::{execute_channel, fetch_channel, CovertConfig, CovertResult};
use phantom::experiment::{figure6, table1, Figure6Point, Table1Cell};
use phantom::UarchProfile;
use phantom_bpu::BtbScheme;
use phantom_kernel::layout::{KERNEL_IMAGE_SLOTS, PHYSMAP_SLOTS};
use phantom_kernel::System;
use phantom_mem::VirtAddr;

/// A boxed error for runner signatures.
pub type RunnerError = Box<dyn std::error::Error>;

/// Regenerate Table 1 over all eight microarchitectures.
///
/// # Errors
///
/// Propagates experiment setup failures.
pub fn run_table1(seed: u64) -> Result<Vec<Table1Cell>, RunnerError> {
    Ok(table1(&UarchProfile::all(), seed)?)
}

/// Regenerate Figure 6 (µop-cache page-offset sweep) on a profile.
///
/// # Errors
///
/// Propagates experiment setup failures.
pub fn run_figure6(profile: UarchProfile, step: u64) -> Result<Vec<Figure6Point>, RunnerError> {
    Ok(figure6(profile, 0xac0, step)?)
}

/// Regenerate Figure 7: recover the Zen 3/4 BTB functions from
/// behavioural collisions.
pub fn run_figure7(samples: usize, seed: u64) -> Figure7 {
    let mut oracle = BtbOracle::new(BtbScheme::zen34());
    let ks = [
        VirtAddr::new(0xffff_ffff_8124_6ac0),
        VirtAddr::new(0xffff_ffff_9230_0ac0),
    ];
    recover_figure7(&mut oracle, &ks, samples, seed)
}

/// Regenerate Table 2 (covert channels) with `bits` per row.
///
/// # Errors
///
/// Propagates channel failures.
pub fn run_table2(bits: usize, seed: u64) -> Result<Vec<CovertResult>, RunnerError> {
    let config = CovertConfig { bits, seed };
    let mut rows = Vec::new();
    for p in UarchProfile::amd() {
        rows.push(fetch_channel(p, config)?);
    }
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        rows.push(execute_channel(p, config)?);
    }
    Ok(rows)
}

/// Regenerate Table 3 rows: `runs` kernel-image KASLR breaks with a
/// reboot (fresh KASLR) before each. `slots` limits the scanned window
/// per run (0 = full 488).
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table3(
    profile: UarchProfile,
    runs: usize,
    slots: u64,
    seed: u64,
) -> Result<Vec<KaslrImageResult>, RunnerError> {
    let mut out = Vec::with_capacity(runs);
    for r in 0..runs {
        let mut sys = System::new(profile.clone(), 1 << 30, seed + r as u64)?;
        let range = scan_window(sys.layout().image_slot, slots, KERNEL_IMAGE_SLOTS);
        let config = KaslrImageConfig { slots: range, seed: seed + r as u64, ..Default::default() };
        out.push(break_kaslr_image(&mut sys, &config)?);
    }
    Ok(out)
}

/// Regenerate Table 4 rows: `runs` physmap breaks (reboot per run).
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table4(
    profile: UarchProfile,
    runs: usize,
    slots: u64,
    seed: u64,
) -> Result<Vec<PhysmapResult>, RunnerError> {
    let mut out = Vec::with_capacity(runs);
    for r in 0..runs {
        let mut sys = System::new(profile.clone(), 1 << 30, seed + r as u64)?;
        let range = scan_window(sys.layout().physmap_slot, slots, PHYSMAP_SLOTS);
        let image_base = sys.image().base; // the §7.1 stage's output
        let config = PhysmapConfig { slots: range, seed: seed + r as u64, ..Default::default() };
        out.push(break_physmap(&mut sys, image_base, &config)?);
    }
    Ok(out)
}

/// Regenerate Table 5 rows: `runs` physical-address searches over a
/// machine with `phys_bytes` of memory (8 GiB and 64 GiB in the paper).
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table5(
    profile: UarchProfile,
    phys_bytes: u64,
    runs: usize,
    seed: u64,
) -> Result<Vec<PhysAddrResult>, RunnerError> {
    let mut out = Vec::with_capacity(runs);
    for r in 0..runs {
        let mut sys = System::new(profile.clone(), phys_bytes, seed + r as u64)?;
        let (image_base, physmap_base) = (sys.image().base, sys.layout().physmap_base());
        let config = PhysAddrConfig { max_decoys: 100, seed: seed + r as u64 };
        out.push(find_physical_address(&mut sys, image_base, physmap_base, &config)?);
    }
    Ok(out)
}

/// Regenerate the §7.4 MDS leak: `runs` reboots, `bytes` leaked each.
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_mds(
    profile: UarchProfile,
    bytes: usize,
    runs: usize,
    seed: u64,
) -> Result<Vec<MdsLeakResult>, RunnerError> {
    let mut out = Vec::with_capacity(runs);
    for r in 0..runs {
        let mut sys = System::new(profile.clone(), 1 << 28, seed + r as u64)?;
        let physmap = sys.layout().physmap_base();
        let config = MdsLeakConfig { bytes, seed: seed + r as u64, ..Default::default() };
        out.push(leak_kernel_memory(&mut sys, physmap, &config)?);
    }
    Ok(out)
}

/// A scan window of `width` slots guaranteed to contain `actual`
/// (`width == 0` scans everything). Using a window scales the runtime
/// linearly while preserving the per-candidate discrimination problem;
/// the full scan is the same loop over more candidates.
pub fn scan_window(actual: u64, width: u64, total: u64) -> std::ops::Range<u64> {
    if width == 0 || width >= total {
        return 0..total;
    }
    let lo = actual.saturating_sub(width / 2).min(total - width);
    lo..lo + width
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_window_always_contains_actual() {
        for (actual, width, total) in [(0u64, 16u64, 488u64), (487, 16, 488), (200, 0, 488)] {
            let w = scan_window(actual, width, total);
            assert!(w.contains(&actual), "{actual} {width} {total}");
            assert!(w.end <= total);
        }
    }

    #[test]
    fn table3_runner_reboots_between_runs() {
        let runs = run_table3(UarchProfile::zen3(), 2, 8, 77).unwrap();
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.correct));
        // Different reboots landed on different slots (seeded).
        assert_ne!(runs[0].actual_slot, runs[1].actual_slot);
    }

    #[test]
    fn figure7_runner_recovers_twelve_functions() {
        let f = run_figure7(24, 3);
        assert_eq!(f.functions.len(), 12);
        assert!(f.paper_patterns_hold);
    }
}
