//! Shared runners for the benchmark harness and the `repro` binary.
//!
//! Each function regenerates one of the paper's tables or figures,
//! returning structured results that `repro` renders with
//! [`phantom::report`]. Every sweep is a [`phantom::runner::Scenario`]
//! driven by a [`TrialRunner`], so independent trials (reboots, bits,
//! cells) shard across worker threads; the `*_on` variants take an
//! explicit runner for thread-count control, and outputs are identical
//! at any thread count. Run counts and search-space sizes are
//! parameterized: the paper's full protocol (100 reboots, all 488 /
//! 25 600 KASLR slots) is reachable by cranking the knobs, while the
//! defaults keep a laptop run in minutes. Scaling choices are recorded
//! in `EXPERIMENTS.md`.

use phantom::ablation::{noise_sweep_on, NoiseSweepConfig, NoiseSweepPoint};
use phantom::attacks::{
    pht_channel_on, KaslrImageResult, KaslrImageSweep, MdsLeakResult, MdsLeakSweep,
    PhtChannelConfig, PhtChannelResult, PhysAddrResult, PhysAddrSweep, PhysmapResult, PhysmapSweep,
};
use phantom::collide::{recover_figure7, BtbOracle, Figure7};
use phantom::covert::{table2_on, CovertConfig, CovertResult};
use phantom::experiment::{figure6_on, table1_on, Figure6Point, Table1Cell};
use phantom::runner::TrialRunner;
use phantom::UarchProfile;
use phantom_bpu::BtbScheme;
use phantom_mem::VirtAddr;

pub mod campaign;
pub mod discover;
pub mod snapshot;

pub use phantom::attacks::scan_window;
pub use snapshot::{
    collect_snapshot, cow_reference, decode_cache_reference, decode_cache_wall_ab,
    snapshot_wall_ab, tlb_reference, BenchConfig,
};

/// A boxed error for runner signatures.
pub type RunnerError = Box<dyn std::error::Error + Send + Sync>;

/// A sweep result annotated with the host wall-clock time it took and
/// the thread count that produced it.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The sweep's output.
    pub result: T,
    /// Host wall-clock duration (not simulated time).
    pub wall: std::time::Duration,
    /// Worker threads the runner used.
    pub threads: usize,
}

impl<T> Timed<T> {
    /// A short `wall 1.23s on 8 threads` note for report footers.
    pub fn wall_note(&self) -> String {
        format!(
            "wall {:.2}s on {} thread{}",
            self.wall.as_secs_f64(),
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )
    }
}

/// Time a sweep under `runner`, recording wall-clock and thread count.
///
/// # Errors
///
/// Propagates the sweep's error.
pub fn timed<T, E>(
    runner: &TrialRunner,
    sweep: impl FnOnce(&TrialRunner) -> Result<T, E>,
) -> Result<Timed<T>, E> {
    let start = std::time::Instant::now();
    let result = sweep(runner)?;
    Ok(Timed {
        result,
        wall: start.elapsed(),
        threads: runner.threads(),
    })
}

/// Regenerate Table 1 over all eight microarchitectures.
///
/// # Errors
///
/// Propagates experiment setup failures.
pub fn run_table1(seed: u64) -> Result<Vec<Table1Cell>, RunnerError> {
    run_table1_on(&TrialRunner::new(), seed)
}

/// [`run_table1`] on an explicit runner.
///
/// # Errors
///
/// Propagates experiment setup failures.
pub fn run_table1_on(runner: &TrialRunner, seed: u64) -> Result<Vec<Table1Cell>, RunnerError> {
    Ok(table1_on(runner, &UarchProfile::all(), seed)?)
}

/// Regenerate Figure 6 (µop-cache page-offset sweep) on a profile.
///
/// # Errors
///
/// Propagates experiment setup failures.
pub fn run_figure6(profile: UarchProfile, step: u64) -> Result<Vec<Figure6Point>, RunnerError> {
    run_figure6_on(&TrialRunner::new(), profile, step)
}

/// [`run_figure6`] on an explicit runner.
///
/// # Errors
///
/// Propagates experiment setup failures.
pub fn run_figure6_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    step: u64,
) -> Result<Vec<Figure6Point>, RunnerError> {
    Ok(figure6_on(runner, profile, 0xac0, step)?)
}

/// Regenerate Figure 7: recover the Zen 3/4 BTB functions from
/// behavioural collisions.
pub fn run_figure7(samples: usize, seed: u64) -> Figure7 {
    let mut oracle = BtbOracle::new(BtbScheme::zen34());
    let ks = [
        VirtAddr::new(0xffff_ffff_8124_6ac0),
        VirtAddr::new(0xffff_ffff_9230_0ac0),
    ];
    recover_figure7(&mut oracle, &ks, samples, seed)
}

/// Regenerate Table 2 (covert channels) with `bits` per row.
///
/// # Errors
///
/// Propagates channel failures.
pub fn run_table2(bits: usize, seed: u64) -> Result<Vec<CovertResult>, RunnerError> {
    run_table2_on(&TrialRunner::new(), bits, seed)
}

/// [`run_table2`] on an explicit runner.
///
/// # Errors
///
/// Propagates channel failures.
pub fn run_table2_on(
    runner: &TrialRunner,
    bits: usize,
    seed: u64,
) -> Result<Vec<CovertResult>, RunnerError> {
    Ok(table2_on(runner, CovertConfig { bits, seed })?)
}

/// Regenerate Table 3 rows: `runs` kernel-image KASLR breaks with a
/// reboot (fresh KASLR) before each. `slots` limits the scanned window
/// per run (0 = full 488).
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table3(
    profile: UarchProfile,
    runs: usize,
    slots: u64,
    seed: u64,
) -> Result<Vec<KaslrImageResult>, RunnerError> {
    run_table3_on(&TrialRunner::new(), profile, runs, slots, seed)
}

/// [`run_table3`] on an explicit runner.
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table3_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    runs: usize,
    slots: u64,
    seed: u64,
) -> Result<Vec<KaslrImageResult>, RunnerError> {
    runner.run(
        &KaslrImageSweep {
            profile,
            runs,
            window: slots,
            seed,
        },
        seed,
    )
}

/// Regenerate Table 4 rows: `runs` physmap breaks (reboot per run).
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table4(
    profile: UarchProfile,
    runs: usize,
    slots: u64,
    seed: u64,
) -> Result<Vec<PhysmapResult>, RunnerError> {
    run_table4_on(&TrialRunner::new(), profile, runs, slots, seed)
}

/// [`run_table4`] on an explicit runner.
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table4_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    runs: usize,
    slots: u64,
    seed: u64,
) -> Result<Vec<PhysmapResult>, RunnerError> {
    runner.run(
        &PhysmapSweep {
            profile,
            runs,
            window: slots,
            seed,
        },
        seed,
    )
}

/// Regenerate Table 5 rows: `runs` physical-address searches over a
/// machine with `phys_bytes` of memory (8 GiB and 64 GiB in the paper).
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table5(
    profile: UarchProfile,
    phys_bytes: u64,
    runs: usize,
    seed: u64,
) -> Result<Vec<PhysAddrResult>, RunnerError> {
    run_table5_on(&TrialRunner::new(), profile, phys_bytes, runs, seed)
}

/// [`run_table5`] on an explicit runner.
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_table5_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    phys_bytes: u64,
    runs: usize,
    seed: u64,
) -> Result<Vec<PhysAddrResult>, RunnerError> {
    runner.run(
        &PhysAddrSweep {
            profile,
            phys_bytes,
            runs,
            seed,
        },
        seed,
    )
}

/// Regenerate the §7.4 MDS leak: `runs` reboots, `bytes` leaked each.
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_mds(
    profile: UarchProfile,
    bytes: usize,
    runs: usize,
    seed: u64,
) -> Result<Vec<MdsLeakResult>, RunnerError> {
    run_mds_on(&TrialRunner::new(), profile, bytes, runs, seed)
}

/// [`run_mds`] on an explicit runner.
///
/// # Errors
///
/// Propagates attack failures.
pub fn run_mds_on(
    runner: &TrialRunner,
    profile: UarchProfile,
    bytes: usize,
    runs: usize,
    seed: u64,
) -> Result<Vec<MdsLeakResult>, RunnerError> {
    runner.run(
        &MdsLeakSweep {
            profile,
            bytes,
            runs,
            seed,
        },
        seed,
    )
}

/// Run the PHT channel (BranchSpectre-style leak through the
/// conditional-branch predictor) with `bits` per row, one row per AMD
/// part.
///
/// # Errors
///
/// Propagates channel failures.
pub fn run_pht_channel(bits: usize, seed: u64) -> Result<Vec<PhtChannelResult>, RunnerError> {
    run_pht_channel_on(&TrialRunner::new(), bits, seed)
}

/// [`run_pht_channel`] on an explicit runner.
///
/// # Errors
///
/// Propagates channel failures.
pub fn run_pht_channel_on(
    runner: &TrialRunner,
    bits: usize,
    seed: u64,
) -> Result<Vec<PhtChannelResult>, RunnerError> {
    let mut rows = Vec::new();
    for profile in UarchProfile::amd() {
        rows.push(pht_channel_on(
            runner,
            profile,
            PhtChannelConfig { bits, seed },
        )?);
    }
    Ok(rows)
}

/// Run the noise-robustness sweep: covert-channel accuracy, probe
/// spend, and abstention counts as each noise knob sweeps from quiet
/// to harsh while the others stay at zero.
///
/// # Errors
///
/// Propagates channel failures.
pub fn run_noise_sweep(config: &NoiseSweepConfig) -> Result<Vec<NoiseSweepPoint>, RunnerError> {
    run_noise_sweep_on(&TrialRunner::new(), config)
}

/// [`run_noise_sweep`] on an explicit runner.
///
/// # Errors
///
/// Propagates channel failures.
pub fn run_noise_sweep_on(
    runner: &TrialRunner,
    config: &NoiseSweepConfig,
) -> Result<Vec<NoiseSweepPoint>, RunnerError> {
    Ok(noise_sweep_on(runner, config)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_window_always_contains_actual() {
        for (actual, width, total) in [(0u64, 16u64, 488u64), (487, 16, 488), (200, 0, 488)] {
            let w = scan_window(actual, width, total);
            assert!(w.contains(&actual), "{actual} {width} {total}");
            assert!(w.end <= total);
        }
    }

    #[test]
    fn table3_runner_reboots_between_runs() {
        let runs = run_table3(UarchProfile::zen3(), 2, 8, 77).unwrap();
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.correct));
        // Different reboots landed on different slots (seeded).
        assert_ne!(runs[0].actual_slot, runs[1].actual_slot);
    }

    #[test]
    fn figure7_runner_recovers_twelve_functions() {
        let f = run_figure7(24, 3);
        assert_eq!(f.functions.len(), 12);
        assert!(f.paper_patterns_hold);
    }

    #[test]
    fn table3_is_identical_at_any_thread_count() {
        let one = run_table3_on(
            &TrialRunner::with_threads(1),
            UarchProfile::zen3(),
            3,
            8,
            77,
        )
        .unwrap();
        let four = run_table3_on(
            &TrialRunner::with_threads(4),
            UarchProfile::zen3(),
            3,
            8,
            77,
        )
        .unwrap();
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.guessed_slot, b.guessed_slot);
            assert_eq!(a.actual_slot, b.actual_slot);
            assert_eq!(a.best_score, b.best_score);
            assert_eq!(a.cycles, b.cycles);
        }
    }

    #[test]
    fn timed_reports_runner_threads() {
        let runner = TrialRunner::with_threads(2);
        let t = timed(&runner, |r| run_figure6_on(r, UarchProfile::zen2(), 0x400)).unwrap();
        assert_eq!(t.threads, 2);
        assert!(!t.result.is_empty());
        assert!(t.wall_note().contains("2 threads"));
    }
}
