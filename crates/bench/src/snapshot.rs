//! Snapshot collection: run every shipped experiment and assemble the
//! machine-readable [`BenchSnapshot`] that `repro bench` writes and
//! the regression gate diffs.
//!
//! The canonical snapshot is deterministic: same seeds, same thread
//! count or not — byte-identical output (the determinism suite pins
//! this). Host-volatile facts (wall-clock, thread count, the
//! decode-cache wall-clock A/B) only appear when
//! [`BenchConfig::host_meta`] is set, in the `host` section that the
//! diff ignores.

use std::time::Instant;

use phantom::ablation::NoiseSweepConfig;
use phantom::mitigations::{
    lfence_gadget_protection, o4_suppress_bp_on_non_br, o5_auto_ibrs_fetch,
    rsb_stuffing_protection, sls_padding_protection, suppress_overhead_on,
};
use phantom::report::json::{
    BenchSnapshot, CovertRecord, Figure6Record, Figure7Record, GadgetRecord, HostMeta,
    MdsRunRecord, MdsTableRecord, NoiseSweepRecord, O4Record, O5Record, OverheadRecord, PerfRecord,
    PhtChannelRecord, PhysAddrRunRecord, PhysAddrTableRecord, RunMeta, SlotRunRecord,
    SlotTableRecord, SoftwareRecord, StageFlags, Table1Record,
};
use phantom::runner::TrialRunner;
use phantom::UarchProfile;
use phantom_isa::asm::Assembler;
use phantom_isa::inst::AluOp;
use phantom_isa::{Inst, Reg};
use phantom_kernel::System;
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::Machine;

use crate::{
    run_figure6_on, run_figure7, run_mds_on, run_noise_sweep_on, run_pht_channel_on, run_table1_on,
    run_table2_on, run_table3_on, run_table4_on, run_table5_on, timed, RunnerError,
};

/// Snapshot collection knobs. The default is the quick profile, seed
/// 0, no host section — the canonical, byte-reproducible run.
#[derive(Debug, Clone, Default)]
pub struct BenchConfig {
    /// Use the paper's full protocol sizes (slow). Mirrors
    /// `PHANTOM_FULL=1`.
    pub full: bool,
    /// Base seed; per-experiment seeds are fixed offsets from it so
    /// snapshots line up with the rendered tables.
    pub seed: u64,
    /// Emit the host-volatile `host` section (thread count, wall
    /// clocks). Off for canonical, byte-reproducible output.
    pub host_meta: bool,
}

/// Steps of the fixed hot loop behind [`decode_cache_reference`].
const REFERENCE_STEPS: u64 = 20_000;

fn reference_machine() -> Machine {
    let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: 0,
    });
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: 3,
    });
    a.push(Inst::MovImm {
        dst: Reg::R2,
        imm: 0x1234_5678,
    });
    a.label("hot");
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R0,
        src: Reg::R1,
    });
    a.push(Inst::Alu {
        op: AluOp::Xor,
        dst: Reg::R2,
        src: Reg::R0,
    });
    a.push(Inst::Shl {
        dst: Reg::R2,
        amount: 1,
    });
    a.push(Inst::Shr {
        dst: Reg::R2,
        amount: 1,
    });
    a.jmp("hot");
    let blob = a.finish().expect("reference workload assembles");
    m.load_blob(&blob, PageFlags::USER_TEXT)
        .expect("reference workload fits");
    m.set_pc(VirtAddr::new(blob.base));
    m
}

/// Run the fixed decode-cache reference workload and return its
/// `(hits, misses)` counters. Pure function of the workload — safe to
/// diff against a committed baseline.
pub fn decode_cache_reference() -> (u64, u64) {
    let mut m = reference_machine();
    m.run(REFERENCE_STEPS).expect("reference workload runs");
    m.decode_cache_stats()
}

/// Run the fixed reference workload with the trace engine *forced on*
/// — independent of the `PHANTOM_TRACE_CACHE` environment toggle — and
/// return `(hits, bailouts, invalidations)`. Forcing keeps the
/// canonical snapshot byte-identical between trace-on and trace-off
/// runs: the CI parity job `cmp`s the two JSON files whole, so no
/// counter in them may depend on the toggle. Pure function of the
/// workload.
pub fn trace_reference() -> (u64, u64, u64) {
    let mut m = reference_machine();
    m.set_trace_cache_enabled(true);
    m.run(REFERENCE_STEPS).expect("reference workload runs");
    m.trace_stats()
}

/// Run the fixed reference workload and return the machine's TLB
/// `(hits, misses)` — the page walks the translation fast path
/// skipped vs took. Pure function of the workload.
pub fn tlb_reference() -> (u64, u64) {
    let mut m = reference_machine();
    m.run(REFERENCE_STEPS).expect("reference workload runs");
    (m.tlb().hits(), m.tlb().misses())
}

/// Base of the data pages the CoW reference workload dirties.
const COW_DATA_BASE: u64 = 0x50_0000;
/// Data pages the CoW reference workload stores to per round.
const COW_DIRTY_PAGES: u64 = 8;
/// Checkpoint/rewind round trips the CoW reference workload runs.
const COW_ROUNDS: usize = 4;

/// A machine whose hot loop stores into [`COW_DIRTY_PAGES`] distinct
/// data pages — the dirty footprint a snapshot/restore round trip
/// pays for.
fn cow_reference_machine() -> Machine {
    let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
    m.map_range(
        VirtAddr::new(COW_DATA_BASE),
        COW_DIRTY_PAGES * phantom_mem::PAGE_SIZE,
        PageFlags::USER_DATA,
    )
    .expect("data pages fit");
    // Materialize the data frames so every round's stores hit shared
    // (checkpointed) frames and the fault counts are exact multiples.
    // The pattern must be non-zero: poke skips chunks that already
    // match (fresh pages read as zeroes), and a skipped chunk
    // materializes nothing.
    m.poke(
        VirtAddr::new(COW_DATA_BASE),
        &vec![0xa5u8; (COW_DIRTY_PAGES * phantom_mem::PAGE_SIZE) as usize],
    );
    let mut a = Assembler::new(0x40_0000);
    a.push(Inst::MovImm {
        dst: Reg::R0,
        imm: COW_DATA_BASE,
    });
    a.push(Inst::MovImm {
        dst: Reg::R1,
        imm: 1,
    });
    a.push(Inst::MovImm {
        dst: Reg::R2,
        imm: 0x1234_5678,
    });
    a.label("hot");
    for page in 0..COW_DIRTY_PAGES {
        a.push(Inst::Store {
            base: Reg::R0,
            disp: (page * phantom_mem::PAGE_SIZE) as i32,
            src: Reg::R2,
        });
    }
    a.push(Inst::Alu {
        op: AluOp::Add,
        dst: Reg::R2,
        src: Reg::R1,
    });
    a.jmp("hot");
    let blob = a.finish().expect("cow reference workload assembles");
    m.load_blob(&blob, PageFlags::USER_TEXT)
        .expect("cow reference workload fits");
    m.set_pc(VirtAddr::new(blob.base));
    m
}

/// Run the fixed checkpoint/rewind reference workload — `COW_ROUNDS`
/// round trips of run-then-restore over a snapshot — and return the
/// physical memory's `(cow_faults, cow_frames_shared,
/// restore_frames_copied)`. Pure function of the workload: every
/// counter is driven by the modeled machine, never by host state.
pub fn cow_reference() -> (u64, u64, u64) {
    let mut m = cow_reference_machine();
    let snap = m.snapshot();
    for _ in 0..COW_ROUNDS {
        m.run(64).expect("cow reference workload runs");
        m.restore(&snap);
    }
    let phys = m.phys();
    (
        phys.cow_faults(),
        phys.cow_frames_shared(),
        phys.restore_frames_copied(),
    )
}

/// Run the fixed checkpoint/rewind reference workload with the rewind
/// journal and frame pool *forced on* — independent of the
/// `PHANTOM_REWIND_JOURNAL` / `PHANTOM_FRAME_POOL` environment toggles
/// — and return `(rewind_journal_frames, frame_pool_reuses)`. Forcing
/// keeps the canonical snapshot byte-identical between toggle-on and
/// toggle-off runs: the CI throughput job `cmp`s the two JSON files
/// whole, so no counter in them may depend on a toggle. Pure function
/// of the workload.
pub fn rewind_pool_reference() -> (u64, u64) {
    let mut m = cow_reference_machine();
    m.phys_mut().set_rewind_journal(true);
    m.phys_mut().set_frame_pool(true);
    let snap = m.snapshot();
    for _ in 0..COW_ROUNDS {
        m.run(64).expect("cow reference workload runs");
        m.restore(&snap);
    }
    let phys = m.phys();
    (phys.rewind_journal_frames(), phys.frame_pool_reuses())
}

/// Profile and capacity of the boot-cache reference workload: small on
/// purpose — three boots of a 64 MiB Zen 2 system, first builds the
/// template, the next two hit it.
const BOOT_REFERENCE_PHYS: u64 = 1 << 26;

/// Boot the same `(profile, phys_bytes)` key three times through an
/// *isolated* [`phantom_kernel::BootCache`] — never the process-global
/// one, so the count is identical whatever `PHANTOM_BOOT_CACHE` says
/// or how many cached boots other experiments performed — and return
/// the cache's hit counter (canonically 2). Pure function of the
/// workload.
pub fn boot_cache_reference() -> u64 {
    let cache = phantom_kernel::BootCache::new();
    for seed in [1u64, 2, 3] {
        cache
            .boot(UarchProfile::zen2(), BOOT_REFERENCE_PHYS, seed)
            .expect("reference boot succeeds");
    }
    cache.hits()
}

/// Eviction sets the probe-arena reference workload re-arms.
const ARENA_REFERENCE_SETS: usize = 6;

/// Install a probe arena on a fresh machine and re-arm it across
/// `ARENA_REFERENCE_SETS` L1I sets, returning the machine's re-arm
/// instrumentation counter. Uses a private machine, so the count never
/// depends on `PHANTOM_PROBE_ARENA` or on what the shipped scenarios
/// armed. Pure function of the workload.
pub fn probe_arena_reference() -> u64 {
    let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
    let arena = phantom_sidechannel::ProbeArena::install(
        &mut m,
        VirtAddr::new(0x6000_0000),
        phantom_sidechannel::ProbeLevel::L1I,
    )
    .expect("reference arena installs");
    for set in 0..ARENA_REFERENCE_SETS {
        arena.arm(&mut m, set).expect("reference arena arms");
    }
    m.probe_rearms()
}

/// Host wall-clock A/B of checkpoint/rewind on the Table 2 receiver
/// machine (a booted [`System`] at the covert channel's 1 GiB scale),
/// in seconds: `(copy-on-write, deep-copy)` for the same
/// dirty-then-restore loop. The deep side emulates the pre-CoW
/// restore by materializing every resident frame per round trip —
/// exactly what the old whole-machine clone paid. Host-volatile —
/// `host` section only.
pub fn snapshot_wall_ab() -> (f64, f64) {
    const ROUNDS: usize = 32;
    let measure = |deep_copy: bool| -> f64 {
        let mut sys = System::new(UarchProfile::zen2(), 1 << 30, 0).expect("system boots");
        // Warm memory a trained receiver would carry: 1 MiB of
        // attacker state, materialized pre-snapshot.
        let scratch = VirtAddr::new(0x5000_0000);
        let scratch_len: u64 = 1 << 20;
        sys.machine_mut()
            .map_range(scratch, scratch_len, PageFlags::USER_DATA)
            .expect("scratch fits");
        let warm = vec![0xa5u8; scratch_len as usize];
        sys.machine_mut().poke(scratch, &warm);
        let snap = sys.machine_mut().snapshot();
        let deep = deep_copy.then(|| sys.machine().phys().deep_clone());
        let start = Instant::now();
        for round in 0..ROUNDS {
            // Dirty a handful of pages, as one trial does.
            for page in 0..8u64 {
                sys.machine_mut()
                    .poke_u64(scratch + page * phantom_mem::PAGE_SIZE, round as u64);
            }
            sys.machine_mut().restore(&snap);
            if let Some(deep) = &deep {
                // The old restore rebuilt physical memory frame by
                // frame from the snapshot's full copy.
                *sys.machine_mut().phys_mut() = deep.deep_clone();
            }
        }
        start.elapsed().as_secs_f64()
    };
    (measure(false), measure(true))
}

/// Host wall-clock A/B of the same workload with the decode cache
/// enabled vs disabled, in seconds. Host-volatile — `host` section
/// only.
pub fn decode_cache_wall_ab() -> (f64, f64) {
    let measure = |enabled: bool| -> f64 {
        let mut m = reference_machine();
        m.set_decode_cache_enabled(enabled);
        let start = Instant::now();
        for _ in 0..8 {
            let mut fresh = reference_machine();
            fresh.set_decode_cache_enabled(enabled);
            fresh.run(REFERENCE_STEPS).expect("reference workload runs");
        }
        start.elapsed().as_secs_f64()
    };
    (measure(true), measure(false))
}

/// Run every experiment on `runner` and assemble the snapshot.
///
/// # Errors
///
/// Propagates the first experiment failure.
pub fn collect_snapshot(
    runner: &TrialRunner,
    cfg: &BenchConfig,
) -> Result<BenchSnapshot, RunnerError> {
    let mut wall: Vec<(String, f64)> = Vec::new();

    let t = timed(runner, |r| run_table1_on(r, cfg.seed))?;
    let table1: Vec<Table1Record> = t.result.iter().map(Table1Record::from).collect();
    wall.push(("table1".into(), t.wall.as_secs_f64()));

    let step = if cfg.full { 0x40 } else { 0x200 };
    let mut figure6 = Vec::new();
    for profile in [UarchProfile::zen2(), UarchProfile::zen4()] {
        let name = profile.name.clone();
        let t = timed(runner, |r| run_figure6_on(r, profile.clone(), step))?;
        figure6.push(Figure6Record {
            uarch: name.to_string(),
            step,
            points: t.result,
        });
        wall.push((format!("figure6 {name}"), t.wall.as_secs_f64()));
    }

    let samples = if cfg.full { 48 } else { 24 };
    let start = Instant::now();
    let figure7 = Figure7Record::from(&run_figure7(samples, cfg.seed));
    wall.push(("figure7".into(), start.elapsed().as_secs_f64()));

    let bits = if cfg.full { 4096 } else { 128 };
    let t = timed(runner, |r| run_table2_on(r, bits, cfg.seed))?;
    let table2: Vec<CovertRecord> = t.result.iter().map(CovertRecord::from).collect();
    wall.push(("table2".into(), t.wall.as_secs_f64()));

    let runs = if cfg.full { 10 } else { 2 };
    let slots = if cfg.full { 0 } else { 16 };
    let mut table3 = Vec::new();
    for p in [
        UarchProfile::zen2(),
        UarchProfile::zen3(),
        UarchProfile::zen4(),
    ] {
        let name = p.name.clone();
        let t = timed(runner, |r| {
            run_table3_on(r, p.clone(), runs, slots, cfg.seed + 100)
        })?;
        table3.push(SlotTableRecord {
            uarch: name.to_string(),
            runs: t.result.iter().map(SlotRunRecord::from).collect(),
        });
        wall.push((format!("table3 {name}"), t.wall.as_secs_f64()));
    }

    let mut table4 = Vec::new();
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name.clone();
        let t = timed(runner, |r| {
            run_table4_on(r, p.clone(), runs, slots, cfg.seed + 200)
        })?;
        table4.push(SlotTableRecord {
            uarch: name.to_string(),
            runs: t.result.iter().map(SlotRunRecord::from).collect(),
        });
        wall.push((format!("table4 {name}"), t.wall.as_secs_f64()));
    }

    let table5_configs: [(UarchProfile, u64); 2] = if cfg.full {
        [
            (UarchProfile::zen1(), 8 << 30),
            (UarchProfile::zen2(), 64 << 30),
        ]
    } else {
        [
            (UarchProfile::zen1(), 1 << 30),
            (UarchProfile::zen2(), 2 << 30),
        ]
    };
    let mut table5 = Vec::new();
    for (p, bytes) in table5_configs {
        let name = p.name.clone();
        let t = timed(runner, |r| {
            run_table5_on(r, p.clone(), bytes, runs, cfg.seed + 300)
        })?;
        table5.push(PhysAddrTableRecord {
            uarch: name.to_string(),
            memory_gib: bytes >> 30,
            runs: t.result.iter().map(PhysAddrRunRecord::from).collect(),
        });
        wall.push((format!("table5 {name}"), t.wall.as_secs_f64()));
    }

    let bytes = if cfg.full { 4096 } else { 32 };
    let mut mds = Vec::new();
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name.clone();
        let t = timed(runner, |r| {
            run_mds_on(r, p.clone(), bytes, runs, cfg.seed + 400)
        })?;
        mds.push(MdsTableRecord {
            uarch: name.to_string(),
            runs: t.result.iter().map(MdsRunRecord::from).collect(),
        });
        wall.push((format!("mds {name}"), t.wall.as_secs_f64()));
    }

    let sweep_cfg = if cfg.full {
        NoiseSweepConfig {
            seed: cfg.seed + 500,
            ..Default::default()
        }
    } else {
        NoiseSweepConfig::quick(cfg.seed + 500)
    };
    let t = timed(runner, |r| run_noise_sweep_on(r, &sweep_cfg))?;
    let noise_sweep: Vec<NoiseSweepRecord> = t.result.iter().map(NoiseSweepRecord::from).collect();
    wall.push(("noise_sweep".into(), t.wall.as_secs_f64()));

    let pht_bits = if cfg.full { 4096 } else { 128 };
    let t = timed(runner, |r| run_pht_channel_on(r, pht_bits, cfg.seed + 600))?;
    let pht_channel: Vec<PhtChannelRecord> = t.result.iter().map(PhtChannelRecord::from).collect();
    wall.push(("pht_channel".into(), t.wall.as_secs_f64()));

    let mut o4 = Vec::new();
    for p in [UarchProfile::zen1(), UarchProfile::zen2()] {
        let name = p.name.clone();
        let outcome = o4_suppress_bp_on_non_br(p)?;
        o4.push(O4Record {
            uarch: name.to_string(),
            baseline: StageFlags::from(&outcome.baseline),
            suppressed: StageFlags::from(&outcome.suppressed),
        });
    }

    let o5 = O5Record {
        transient_fetch_observed: o5_auto_ibrs_fetch(cfg.seed)?,
    };

    let mut software = Vec::new();
    for (name, profile, check) in [
        (
            "lfence",
            UarchProfile::zen2(),
            lfence_gadget_protection as fn(UarchProfile) -> _,
        ),
        (
            "rsb_stuffing",
            UarchProfile::zen2(),
            rsb_stuffing_protection,
        ),
        ("sls_padding", UarchProfile::zen1(), sls_padding_protection),
    ] {
        let uarch = profile.name.clone();
        let (unprotected, protected) = check(profile)?;
        software.push(SoftwareRecord {
            name: name.to_string(),
            uarch: uarch.to_string(),
            unprotected,
            protected,
        });
    }

    let t = timed(runner, |r| {
        Ok::<_, RunnerError>(suppress_overhead_on(r, UarchProfile::zen2()))
    })?;
    let overhead = OverheadRecord::from(&t.result);
    wall.push(("overhead".into(), t.wall.as_secs_f64()));

    let corpus = phantom::gadgets::generate_corpus(&phantom::gadgets::CorpusConfig::default());
    let gadgets = GadgetRecord::from(&phantom::gadgets::census(&corpus));

    let (hits, misses) = decode_cache_reference();
    let (tlb_hits, tlb_misses) = tlb_reference();
    let (cow_faults, cow_frames_shared, restore_frames_copied) = cow_reference();
    let (trace_hits, trace_bailouts, trace_invalidations) = trace_reference();
    let (rewind_journal_frames, frame_pool_reuses) = rewind_pool_reference();
    let boot_cache_hits = boot_cache_reference();
    let probe_arena_rearms = probe_arena_reference();
    let perf = PerfRecord {
        decode_cache_hits: hits,
        decode_cache_misses: misses,
        decodes_avoided: hits,
        tlb_hits,
        tlb_misses,
        cow_faults,
        cow_frames_shared,
        restore_frames_copied,
        // Deterministic like the reference counters: every shipped
        // scenario's probes succeed first try, so the canonical value
        // is 0 and any retry shows up as a baseline diff.
        trial_retries: runner.trial_retries(),
        trace_hits,
        trace_bailouts,
        trace_invalidations,
        boot_cache_hits,
        rewind_journal_frames,
        frame_pool_reuses,
        probe_arena_rearms,
    };

    let host = if cfg.host_meta {
        Some(HostMeta {
            threads: runner.threads() as u64,
            wall_seconds: wall,
            decode_cache_wall: Some(decode_cache_wall_ab()),
            snapshot_wall: Some(snapshot_wall_ab()),
        })
    } else {
        None
    };

    Ok(BenchSnapshot {
        meta: RunMeta {
            profile: if cfg.full { "full" } else { "quick" }.to_string(),
            seed: cfg.seed,
        },
        table1,
        figure6,
        figure7,
        table2,
        table3,
        table4,
        table5,
        mds,
        o4,
        o5,
        software,
        overhead,
        gadgets,
        perf,
        noise_sweep: Some(noise_sweep),
        pht_channel: Some(pht_channel),
        host,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_workload_is_deterministic_and_cache_friendly() {
        let (h1, m1) = decode_cache_reference();
        let (h2, m2) = decode_cache_reference();
        assert_eq!((h1, m1), (h2, m2));
        assert!(h1 > m1 * 100, "hot loop: {h1} hits vs {m1} misses");
    }

    #[test]
    fn tlb_reference_is_deterministic_and_hit_dominated() {
        let (h1, m1) = tlb_reference();
        let (h2, m2) = tlb_reference();
        assert_eq!((h1, m1), (h2, m2));
        assert!(h1 > m1 * 100, "hot loop: {h1} hits vs {m1} misses");
    }

    #[test]
    fn cow_reference_is_deterministic_and_counts_only_dirty_frames() {
        let a = cow_reference();
        let b = cow_reference();
        assert_eq!(a, b);
        let (cow_faults, shared, copied) = a;
        // Each round unshares exactly the stored-to data pages, and
        // each restore copies exactly those back.
        assert_eq!(cow_faults, COW_DIRTY_PAGES * COW_ROUNDS as u64);
        assert_eq!(copied, COW_DIRTY_PAGES * COW_ROUNDS as u64);
        // After the final restore every resident frame is shared with
        // the snapshot again.
        assert!(shared >= COW_DIRTY_PAGES, "{shared} frames shared");
    }

    #[test]
    fn rewind_pool_reference_is_deterministic_and_counts_exact_multiples() {
        let a = rewind_pool_reference();
        let b = rewind_pool_reference();
        assert_eq!(a, b);
        let (journal_frames, pool_reuses) = a;
        // Every round dirties exactly the stored-to data pages, and the
        // journal rewinds exactly those.
        assert_eq!(journal_frames, COW_DIRTY_PAGES * COW_ROUNDS as u64);
        // The pool is empty on the first round's rewind; every later
        // round recycles all of its retired frames.
        assert_eq!(pool_reuses, COW_DIRTY_PAGES * (COW_ROUNDS as u64 - 1));
    }

    #[test]
    fn boot_cache_reference_is_deterministic_and_isolated() {
        // Three same-key boots: one template build, two hits — however
        // many cached boots the rest of the process performed.
        assert_eq!(boot_cache_reference(), 2);
        assert_eq!(boot_cache_reference(), 2);
    }

    #[test]
    fn probe_arena_reference_counts_every_rearm() {
        let a = probe_arena_reference();
        assert_eq!(a, ARENA_REFERENCE_SETS as u64);
        assert_eq!(probe_arena_reference(), a);
    }

    #[test]
    fn reference_workload_results_do_not_depend_on_the_cache() {
        let mut cached = reference_machine();
        cached.run(REFERENCE_STEPS).unwrap();
        let mut uncached = reference_machine();
        uncached.set_decode_cache_enabled(false);
        uncached.run(REFERENCE_STEPS).unwrap();
        assert_eq!(cached.cycles(), uncached.cycles());
        assert_eq!(cached.reg(Reg::R0), uncached.reg(Reg::R0));
        assert_eq!(cached.reg(Reg::R2), uncached.reg(Reg::R2));
        assert_eq!(uncached.decode_cache_stats(), (0, 0));
    }

    #[test]
    fn trace_reference_is_deterministic_and_replay_dominated() {
        let a = trace_reference();
        let b = trace_reference();
        assert_eq!(a, b);
        let (hits, bailouts, invalidations) = a;
        // The hot loop is one straight-line superblock; nearly every
        // run-loop iteration should replay it whole.
        assert!(hits > 1000, "{hits} trace hits");
        assert!(hits > bailouts * 100, "{hits} hits vs {bailouts} bailouts");
        assert_eq!(invalidations, 0);
    }

    #[test]
    fn reference_workload_results_do_not_depend_on_the_trace_engine() {
        let mut traced = reference_machine();
        traced.set_trace_cache_enabled(true);
        traced.run(REFERENCE_STEPS).unwrap();
        let mut untraced = reference_machine();
        untraced.set_trace_cache_enabled(false);
        untraced.run(REFERENCE_STEPS).unwrap();
        assert_eq!(traced.cycles(), untraced.cycles());
        assert_eq!(traced.pc(), untraced.pc());
        assert_eq!(traced.reg(Reg::R0), untraced.reg(Reg::R0));
        assert_eq!(traced.reg(Reg::R2), untraced.reg(Reg::R2));
        assert_eq!(traced.pmu().clone(), untraced.pmu().clone());
        assert_eq!(
            traced.decode_cache_stats(),
            untraced.decode_cache_stats(),
            "replay decode accounting must mirror the stage machine"
        );
        assert_eq!(untraced.trace_stats().0, 0);
        assert!(traced.trace_stats().0 > 1000);
    }
}
