//! Fleet-scale covert-channel campaigns: a deterministic job grid,
//! streamed JSONL results, and byte-exact resume.
//!
//! A *campaign* is a batch of (uarch × scenario × noise-point) jobs.
//! Each job is one covert-channel transfer: the receiver system boots
//! once, the [`TrialRunner`] forks the post-boot checkpoint for every
//! bit, and the decoded result is emitted as a single-line
//! `phantom-bench/v1` JSONL record the moment the job completes.
//!
//! Determinism contract: the job list is a pure function of
//! [`CampaignConfig`], each job's seed is a pure function of the
//! campaign seed and the job index, and records carry **no wall-clock
//! data**. The output file is therefore byte-identical across runs,
//! worker counts, and interrupt/resume cycles — which is what makes
//! `--resume` a simple longest-valid-prefix check (see
//! [`resume_prefix`]) instead of a merge problem.

use std::io::Write;

use phantom::attacks::{pht_channel_decoded_on, PhtChannelConfig};
use phantom::covert::{
    execute_channel_decoded_on, fetch_channel_boot_per_trial_on, fetch_channel_decoded_on,
    CovertConfig,
};
use phantom::decode::DecoderConfig;
use phantom::report::json::SCHEMA;
use phantom::report::value::{parse, JsonValue};
use phantom::runner::{trial_seed, TrialRunner};
use phantom::{UarchProfile, UarchRegistry};
use phantom_sidechannel::NoiseModel;

use crate::RunnerError;

/// Which covert channel a job drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignScenario {
    /// P1 fetch channel (all Zen parts).
    Fetch,
    /// P2 execute channel (live on Zen 1/2, dead elsewhere — dead rows
    /// are data too).
    Execute,
    /// PHT channel: BranchSpectre-style recovery through the
    /// conditional-branch predictor (no cache probe).
    Pht,
}

impl CampaignScenario {
    /// Stable identifier used in job ids and JSONL records.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignScenario::Fetch => "fetch",
            CampaignScenario::Execute => "execute",
            CampaignScenario::Pht => "pht",
        }
    }

    /// Inverse of [`as_str`](CampaignScenario::as_str).
    #[must_use]
    pub fn parse(s: &str) -> Option<CampaignScenario> {
        match s {
            "fetch" => Some(CampaignScenario::Fetch),
            "execute" => Some(CampaignScenario::Execute),
            "pht" => Some(CampaignScenario::Pht),
            _ => None,
        }
    }
}

/// One point on a noise axis. The axis names match the
/// [`NoiseModel`] calibration knobs; `quiet` is the all-zero origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePoint {
    /// `quiet`, `jitter_cycles`, `spurious_evict`, or `missed_signal`.
    pub axis: &'static str,
    /// Knob value (cycles for jitter, probability otherwise; ignored
    /// for `quiet`).
    pub value: f64,
}

impl NoisePoint {
    /// Stable identifier used in job ids (`axis=value`).
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}={}", self.axis, self.value)
    }

    /// Build the noise model for this point: quiet calibration with a
    /// single knob raised. Unknown axes fall back to quiet so a
    /// hand-edited grid degrades loudly in the data, not as a panic.
    #[must_use]
    pub fn model(&self, seed: u64) -> NoiseModel {
        let mut noise = NoiseModel::quiet(seed);
        match self.axis {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            "jitter_cycles" => noise.jitter_cycles = self.value as u64,
            "spurious_evict" => noise.spurious_evict = self.value,
            "missed_signal" => noise.missed_signal = self.value,
            _ => {}
        }
        noise
    }
}

/// The default noise axis sample: the quiet origin plus two timing and
/// two classification perturbations, all inside the adaptive decoder's
/// recoverable range.
#[must_use]
pub fn default_noise_points() -> Vec<NoisePoint> {
    vec![
        NoisePoint {
            axis: "quiet",
            value: 0.0,
        },
        NoisePoint {
            axis: "jitter_cycles",
            value: 2.0,
        },
        NoisePoint {
            axis: "jitter_cycles",
            value: 6.0,
        },
        NoisePoint {
            axis: "spurious_evict",
            value: 0.04,
        },
        NoisePoint {
            axis: "missed_signal",
            value: 0.04,
        },
    ]
}

/// A full campaign: the cartesian grid of uarches × scenarios × noise
/// points, each transferring `bits` bits.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// (registry key, profile) pairs, in emission order.
    pub uarches: Vec<(String, UarchProfile)>,
    /// Channel kinds to drive.
    pub scenarios: Vec<CampaignScenario>,
    /// Noise points to sweep.
    pub noise: Vec<NoisePoint>,
    /// Bits per transfer (= trials per job).
    pub bits: usize,
    /// Campaign base seed; job seeds derive from it by index.
    pub seed: u64,
}

impl CampaignConfig {
    /// The default grid: all four Zen parts × both channels × the
    /// default five noise points × 256 bits = 40 jobs, 10240 trials.
    #[must_use]
    pub fn default_grid(registry: &UarchRegistry) -> CampaignConfig {
        let uarches = ["zen1", "zen2", "zen3", "zen4"]
            .iter()
            .filter_map(|key| {
                registry
                    .get(key)
                    .map(|spec| ((*key).to_string(), spec.profile()))
            })
            .collect();
        CampaignConfig {
            uarches,
            scenarios: vec![
                CampaignScenario::Fetch,
                CampaignScenario::Execute,
                CampaignScenario::Pht,
            ],
            noise: default_noise_points(),
            bits: 256,
            seed: 0,
        }
    }

    /// Total trial count across the grid.
    #[must_use]
    pub fn total_trials(&self) -> usize {
        self.uarches.len() * self.scenarios.len() * self.noise.len() * self.bits
    }
}

/// One unit of campaign work. `index` is the job's position in the
/// canonical emission order; `id` is its stable human-readable name.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position in the canonical job sequence (drives the seed).
    pub index: usize,
    /// `"{uarch}/{scenario}/{axis}={value}"`.
    pub id: String,
    /// Registry key of the target uarch.
    pub uarch_key: String,
    /// Resolved profile.
    pub profile: UarchProfile,
    /// Channel kind.
    pub scenario: CampaignScenario,
    /// Noise point.
    pub noise: NoisePoint,
}

/// Expand a config into its canonical job sequence: uarch-major,
/// scenario, then noise point — matching the order records must appear
/// in the JSONL stream.
#[must_use]
pub fn jobs(cfg: &CampaignConfig) -> Vec<Job> {
    let mut out = Vec::with_capacity(cfg.uarches.len() * cfg.scenarios.len() * cfg.noise.len());
    for (uarch_key, profile) in &cfg.uarches {
        for &scenario in &cfg.scenarios {
            for &noise in &cfg.noise {
                let index = out.len();
                out.push(Job {
                    index,
                    id: format!("{uarch_key}/{}/{}", scenario.as_str(), noise.id()),
                    uarch_key: uarch_key.clone(),
                    profile: profile.clone(),
                    scenario,
                    noise,
                });
            }
        }
    }
    out
}

/// Run one job: boot the receiver once, fork the checkpoint per bit,
/// decode, and render the result as a single JSONL record. The record
/// deliberately excludes host wall-clock — `seconds` below is the
/// *simulated* transfer time, a pure function of the inputs.
///
/// # Errors
///
/// Returns [`RunnerError`] on setup or syscall failure inside the
/// channel.
pub fn run_job(
    runner: &TrialRunner,
    cfg: &CampaignConfig,
    job: &Job,
) -> Result<JsonValue, RunnerError> {
    let seed = trial_seed(cfg.seed, job.index);
    let covert = CovertConfig {
        bits: cfg.bits,
        seed,
    };
    let noise = job.noise.model(seed);
    let result = match job.scenario {
        CampaignScenario::Fetch => JobMetrics::from_covert(&fetch_channel_decoded_on(
            runner,
            job.profile.clone(),
            covert,
            noise,
            DecoderConfig::default(),
        )?),
        CampaignScenario::Execute => JobMetrics::from_covert(&execute_channel_decoded_on(
            runner,
            job.profile.clone(),
            covert,
            noise,
            DecoderConfig::default(),
        )?),
        CampaignScenario::Pht => JobMetrics::from_pht(&pht_channel_decoded_on(
            runner,
            job.profile.clone(),
            PhtChannelConfig {
                bits: cfg.bits,
                seed,
            },
            noise,
            DecoderConfig::default(),
        )?),
    };
    Ok(job_record(cfg, job, seed, &result))
}

/// The metric fields every campaign scenario reports, regardless of
/// which channel produced them. Both covert-channel and PHT-channel
/// results carry this exact set, so the JSONL record shape stays
/// uniform across the grid.
struct JobMetrics {
    accuracy: f64,
    seconds: f64,
    bits_per_sec: f64,
    probes: u64,
    abstentions: usize,
    mean_confidence: f64,
}

impl JobMetrics {
    fn from_covert(r: &phantom::covert::CovertResult) -> JobMetrics {
        JobMetrics {
            accuracy: r.accuracy,
            seconds: r.seconds,
            bits_per_sec: r.bits_per_sec,
            probes: r.probes,
            abstentions: r.abstentions,
            mean_confidence: r.mean_confidence,
        }
    }

    fn from_pht(r: &phantom::attacks::PhtChannelResult) -> JobMetrics {
        JobMetrics {
            accuracy: r.accuracy,
            seconds: r.seconds,
            bits_per_sec: r.bits_per_sec,
            probes: r.probes,
            abstentions: r.abstentions,
            mean_confidence: r.mean_confidence,
        }
    }
}

fn job_record(cfg: &CampaignConfig, job: &Job, seed: u64, r: &JobMetrics) -> JsonValue {
    let mut rec = JsonValue::object();
    rec.set("schema", JsonValue::Str(SCHEMA.to_string()))
        .set("kind", JsonValue::Str("campaign".to_string()))
        .set("job", JsonValue::Str(job.id.clone()))
        .set("index", JsonValue::Uint(job.index as u64))
        .set("uarch", JsonValue::Str(job.uarch_key.clone()))
        .set(
            "scenario",
            JsonValue::Str(job.scenario.as_str().to_string()),
        )
        .set("noise_axis", JsonValue::Str(job.noise.axis.to_string()))
        .set("noise_value", JsonValue::Float(job.noise.value))
        .set("bits", JsonValue::Uint(cfg.bits as u64))
        .set("seed", JsonValue::Uint(seed))
        .set("accuracy", JsonValue::Float(r.accuracy))
        .set("seconds", JsonValue::Float(r.seconds))
        .set("bits_per_sec", JsonValue::Float(r.bits_per_sec))
        .set("probes", JsonValue::Uint(r.probes))
        .set("abstentions", JsonValue::Uint(r.abstentions as u64))
        .set("mean_confidence", JsonValue::Float(r.mean_confidence));
    rec
}

/// How far a partial JSONL file got, and the exact bytes of its valid
/// prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumePoint {
    /// Number of leading jobs already completed (index of the first
    /// job still to run).
    pub done: usize,
    /// The validated prefix, byte-exact, ready to re-emit.
    pub prefix: String,
}

/// Find the longest valid prefix of a partial campaign file against the
/// expected job sequence. A line is valid iff it parses as JSON and its
/// `job` field names the next expected job id. The first invalid,
/// out-of-order, or truncated line — and everything after it — is
/// discarded; because the stream is append-only and in canonical
/// order, everything before it is exactly the completed work.
#[must_use]
pub fn resume_prefix(partial: &str, jobs: &[Job]) -> ResumePoint {
    let mut done = 0;
    let mut prefix = String::new();
    for line in partial.split_inclusive('\n') {
        let body = line.strip_suffix('\n');
        let Some(body) = body else {
            break; // final line lacks its newline: interrupted mid-write
        };
        if done >= jobs.len() {
            break;
        }
        let ok = parse(body)
            .ok()
            .and_then(|v| v.get("job").and_then(|j| j.as_str().map(String::from)))
            .is_some_and(|id| id == jobs[done].id);
        if !ok {
            break;
        }
        prefix.push_str(line);
        done += 1;
    }
    ResumePoint { done, prefix }
}

/// Run a campaign, streaming one record per line to `out` as each job
/// completes. The first `skip` jobs are assumed already present in the
/// output (resume); `progress` is called after every job with
/// (finished-count, total, job-id).
///
/// # Errors
///
/// Returns [`RunnerError`] if a job or a write fails. The stream is
/// flushed after every record, so an interrupted campaign leaves at
/// worst one torn final line — which [`resume_prefix`] drops.
pub fn run_campaign(
    runner: &TrialRunner,
    cfg: &CampaignConfig,
    skip: usize,
    out: &mut dyn Write,
    progress: &mut dyn FnMut(usize, usize, &str),
) -> Result<(), RunnerError> {
    let jobs = jobs(cfg);
    for job in jobs.iter().skip(skip) {
        let record = run_job(runner, cfg, job)?;
        out.write_all(record.to_compact_string().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        progress(job.index + 1, jobs.len(), &job.id);
    }
    Ok(())
}

/// Outcome of the boot-per-trial vs fork-per-trial A/B.
#[derive(Debug, Clone, Copy)]
pub struct AbReport {
    /// Wall-clock seconds for the checkpoint-forking run.
    pub fork_secs: f64,
    /// Wall-clock seconds for the boot-every-trial run.
    pub boot_secs: f64,
    /// Decoded accuracy (identical for both arms by construction).
    pub accuracy: f64,
    /// Bits transferred in each arm.
    pub bits: usize,
}

impl AbReport {
    /// boot / fork wall-clock ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.fork_secs > 0.0 {
            self.boot_secs / self.fork_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Run one representative job (zen2 fetch, quiet noise) twice — forking
/// the post-boot checkpoint per trial vs re-booting per trial — and
/// report host wall-clock for both arms. Both arms decode identical
/// bits; only the time differs. Wall-clock stays out of campaign
/// records, so this is the one place the repo measures it.
///
/// # Errors
///
/// Returns [`RunnerError`] if either arm fails, or if the two arms
/// disagree on accuracy (which would falsify the fork contract).
pub fn ab_compare(runner: &TrialRunner, bits: usize, seed: u64) -> Result<AbReport, RunnerError> {
    let profile = UarchProfile::zen2();
    let covert = CovertConfig { bits, seed };
    let noise = NoiseModel::quiet(seed);

    let t0 = std::time::Instant::now();
    let forked = fetch_channel_decoded_on(
        runner,
        profile.clone(),
        covert,
        noise.clone(),
        DecoderConfig::default(),
    )?;
    let fork_secs = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let booted =
        fetch_channel_boot_per_trial_on(runner, profile, covert, noise, DecoderConfig::default())?;
    let boot_secs = t1.elapsed().as_secs_f64();

    if (forked.accuracy - booted.accuracy).abs() > f64::EPSILON {
        return Err(format!(
            "A/B arms disagree: fork accuracy {} vs boot accuracy {}",
            forked.accuracy, booted.accuracy
        )
        .into());
    }
    Ok(AbReport {
        fork_secs,
        boot_secs,
        accuracy: forked.accuracy,
        bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> CampaignConfig {
        let registry = UarchRegistry::with_builtins();
        let mut cfg = CampaignConfig::default_grid(&registry);
        cfg.uarches.truncate(2);
        cfg.scenarios = vec![CampaignScenario::Fetch];
        cfg.noise.truncate(2);
        cfg.bits = 16;
        cfg
    }

    #[test]
    fn default_grid_hits_the_issue_floor() {
        let registry = UarchRegistry::with_builtins();
        let cfg = CampaignConfig::default_grid(&registry);
        assert_eq!(cfg.uarches.len(), 4);
        assert_eq!(jobs(&cfg).len(), 60);
        assert!(cfg.total_trials() >= 10_000, "{}", cfg.total_trials());
    }

    #[test]
    fn job_ids_are_stable_and_in_canonical_order() {
        let cfg = tiny_grid();
        let js = jobs(&cfg);
        assert_eq!(js.len(), 4);
        assert_eq!(js[0].id, "zen1/fetch/quiet=0");
        assert_eq!(js[1].id, "zen1/fetch/jitter_cycles=2");
        assert_eq!(js[2].id, "zen2/fetch/quiet=0");
        for (i, j) in js.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }

    #[test]
    fn campaign_streams_one_valid_record_per_job() {
        let cfg = tiny_grid();
        let runner = TrialRunner::new();
        let mut buf = Vec::new();
        run_campaign(&runner, &cfg, 0, &mut buf, &mut |_, _, _| {}).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (line, job) in lines.iter().zip(jobs(&cfg)) {
            let v = parse(line).unwrap();
            assert_eq!(v.get("schema").unwrap().as_str().unwrap(), SCHEMA);
            assert_eq!(v.get("job").unwrap().as_str().unwrap(), job.id);
            assert!(v.get("accuracy").unwrap().as_f64().unwrap() > 0.9);
        }
    }

    #[test]
    fn resume_prefix_drops_torn_and_foreign_tails() {
        let cfg = tiny_grid();
        let js = jobs(&cfg);
        let runner = TrialRunner::new();
        let mut buf = Vec::new();
        run_campaign(&runner, &cfg, 0, &mut buf, &mut |_, _, _| {}).unwrap();
        let full = String::from_utf8(buf).unwrap();

        // Empty file: nothing done.
        assert_eq!(resume_prefix("", &js).done, 0);

        // Truncated mid-record: the torn line is dropped.
        let cut = full.len() * 5 / 8;
        let partial = &full[..cut];
        let rp = resume_prefix(partial, &js);
        assert!(rp.done < js.len());
        assert!(partial.starts_with(&rp.prefix));
        assert!(rp.prefix.ends_with('\n') || rp.prefix.is_empty());

        // A line whose job id is out of order stops the prefix.
        let mut lines: Vec<&str> = full.lines().collect();
        lines.swap(1, 2);
        let shuffled = lines.join("\n") + "\n";
        assert_eq!(resume_prefix(&shuffled, &js).done, 1);

        // Garbage stops the prefix.
        let garbled = format!("{}not json\n", rp.prefix);
        assert_eq!(resume_prefix(&garbled, &js).done, rp.done);

        // The full file resumes to completion.
        let rp = resume_prefix(&full, &js);
        assert_eq!(rp.done, js.len());
        assert_eq!(rp.prefix, full);
    }

    #[test]
    fn resume_reproduces_the_uninterrupted_file_byte_for_byte() {
        let cfg = tiny_grid();
        let js = jobs(&cfg);
        let runner = TrialRunner::new();
        let mut buf = Vec::new();
        run_campaign(&runner, &cfg, 0, &mut buf, &mut |_, _, _| {}).unwrap();
        let full = String::from_utf8(buf).unwrap();

        let cut = full.len() / 2;
        let rp = resume_prefix(&full[..cut], &js);
        let mut resumed = rp.prefix.clone().into_bytes();
        run_campaign(&runner, &cfg, rp.done, &mut resumed, &mut |_, _, _| {}).unwrap();
        assert_eq!(String::from_utf8(resumed).unwrap(), full);
    }

    fn campaign_bytes(cfg: &CampaignConfig, threads: usize) -> String {
        let runner = TrialRunner::with_threads(threads);
        let mut buf = Vec::new();
        run_campaign(&runner, cfg, 0, &mut buf, &mut |_, _, _| {}).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn campaign_jsonl_is_byte_identical_across_worker_counts() {
        let cfg = tiny_grid();
        assert_eq!(
            campaign_bytes(&cfg, 1),
            campaign_bytes(&cfg, 8),
            "campaign records must not depend on the worker count"
        );
    }

    #[test]
    fn campaign_jsonl_is_byte_identical_with_throughput_paths_toggled() {
        // The host-throughput paths (boot cache, probe arena, rewind
        // journal, frame pool, warm forks) change wall-clock only:
        // every record they stream must match the legacy paths byte
        // for byte. Flipping the toggles mid-process is safe precisely
        // because of that contract — no concurrently running test can
        // observe the flip.
        const TOGGLES: [&str; 4] = [
            "PHANTOM_BOOT_CACHE",
            "PHANTOM_PROBE_ARENA",
            "PHANTOM_REWIND_JOURNAL",
            "PHANTOM_FRAME_POOL",
        ];
        let cfg = tiny_grid();
        for var in TOGGLES {
            std::env::set_var(var, "0");
        }
        let legacy = campaign_bytes(&cfg, 1);
        for var in TOGGLES {
            std::env::set_var(var, "1");
        }
        let fast = campaign_bytes(&cfg, 1);
        std::env::set_var("PHANTOM_WARM_FORK", "1");
        let warm = campaign_bytes(&cfg, 1);
        std::env::remove_var("PHANTOM_WARM_FORK");
        for var in TOGGLES {
            std::env::remove_var(var);
        }
        assert_eq!(legacy, fast, "throughput paths must be byte-invisible");
        assert_eq!(legacy, warm, "warm forks must be byte-invisible");
    }

    #[test]
    fn ab_arms_agree_and_report_wall_clock() {
        let runner = TrialRunner::new();
        let ab = ab_compare(&runner, 8, 7).unwrap();
        assert!(ab.accuracy > 0.9);
        assert!(ab.fork_secs > 0.0 && ab.boot_secs > 0.0);
    }
}
