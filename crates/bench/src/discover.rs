//! Adversarial auto-discovery over the (program × spec) space.
//!
//! The hand-written Table 1 sweep asks a fixed question: five canonical
//! victims, five canonical trainings, eight builtin parts, training
//! always *in place*. This module asks the open-ended one — *which*
//! (victim program, microarchitecture, training placement) triples
//! produce a decoder-detectable misprediction whose wrong path reaches
//! stage ≥ ID? A seeded fuzzer drives three mutation axes at once:
//!
//! * **programs** — random [`ProgOp`] sequences assembled at the victim
//!   site with [`phantom_isa::Assembler`]; malformed candidates
//!   (undefined labels, backwards `org`, oversized displacements) are
//!   *rejected candidates counted by reason*, not crashes — the
//!   structured [`AsmError`] paths exist precisely so a fuzzer can lean
//!   on them;
//! * **specs** — builtin `phantom-uarch-spec v1` parts mutated within
//!   validation bounds by [`mutate_spec`];
//! * **placement** — the training site is `V ^ δ` for a BTB alias
//!   delta δ solved from the spec's fold functions
//!   ([`alias_delta`]), so out-of-place training through real BTB
//!   aliasing is part of the search space.
//!
//! The leak property is checked over the event bus with
//! [`LeakProbe`] and cross-checked against the
//! [`TransientReport`](phantom_pipeline::TransientReport) ground
//! truth; any disagreement is flagged on the finding. For δ ≠ 0 the
//! GF(2) solver is the noise oracle: collisions collected from the
//! spec's own BTB must recover functions that all annihilate δ
//! ([`oracle_confirms`]), proving the alias is structural rather than
//! a lucky eviction.
//!
//! Findings are minimized (delta-debug the instruction sequence, then
//! shrink the spec toward its base builtin with
//! [`shrink_candidates`]) and can be serialized as
//! `phantom-fuzz-case v1` text files — the committed regression corpus
//! under `tests/corpus/` that `tests/e2e_discover.rs` replays.
//!
//! Determinism contract: a case is a pure function of its trial seed,
//! evaluation is a pure function of the case, and the JSONL report is
//! a pure function of the (trial-ordered) samples — so `repro
//! discover` output is byte-identical across runs and worker counts,
//! like every other runner in this crate.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom::collide::{collect_collisions, BtbOracle, CollisionOracle};
use phantom::experiment::TrainKind;
use phantom::property::LeakProbe;
use phantom::report::json::SCHEMA;
use phantom::report::value::JsonValue;
use phantom::runner::{Scenario, ScenarioError, Trial, TrialRunner};
use phantom::Stage;
use phantom_gf2::{recover_functions, BitMatrix, RecoveryConfig};
use phantom_isa::asm::AsmError;
use phantom_isa::encode::encode_into;
use phantom_isa::{Assembler, Cond, Inst, Reg};
use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::spec::mutate::{matches_base, mutate_spec, shrink_candidates};
use phantom_pipeline::spec::{parse_specs, SPEC_HEADER};
use phantom_pipeline::{Machine, UarchSpec};

use crate::RunnerError;

/// Header line of the corpus text format.
pub const CASE_HEADER: &str = "phantom-fuzz-case v1";

// The fixed geography, mirroring `phantom::experiment`'s standard
// layout: victim site V, phantom target C (load payload), halt island
// F, the RSB call site, the probe data page, and the stack.
const VICTIM: u64 = 0x40_0ac0;
const TARGET: u64 = 0x48_0b40;
const HALT: u64 = 0x4c_0000;
const CALL_SITE: u64 = 0x4a_0b3b;
const PROBE: u64 = 0x60_0000;
const STACK_BASE: u64 = 0x7000_0000;
const STACK_TOP: u64 = 0x7000_4000 - 64;
/// Span mapped (and writable) at the victim site; programs longer than
/// this are rejected candidates.
const PROG_SPAN: u64 = 0x2000;
/// Distance from a training site to its direct-branch target — the
/// same V→C displacement the Table 1 harness uses, kept constant so
/// the phantom steer at V lands on the payload whether the BTB stores
/// targets absolutely or PC-relatively.
const DIRECT_SPAN: u64 = TARGET - VICTIM;
/// Canonical 47-bit user virtual address space bound.
const VA_LIMIT: u64 = 1 << 47;

/// One instruction-sequence gene. The closed set keeps the corpus text
/// format total: every op serializes with [`op_text`] and parses back
/// with [`parse_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgOp {
    /// Single-byte `nop`.
    Nop,
    /// Multi-byte nop of the given encoded length (3–15).
    NopN(u8),
    /// `ret` — pops the planted return address.
    Ret,
    /// `load r9, [r8]` — r8 holds the probe page.
    Load,
    /// `jmp* r11` — r11 holds the halt island.
    JmpInd,
    /// Define local label `Ln` here.
    Label(u8),
    /// `jmp Ln` — undefined labels are rejected candidates.
    Jmp(u8),
    /// `jb Ln` — CF is clear on the victim run, so never taken.
    Jcc(u8),
    /// `call Ln`.
    Call(u8),
    /// `org` to the given offset from the victim site; backwards moves
    /// are rejected candidates.
    Org(u16),
}

/// Canonical text form of one op (one corpus line, sans indent).
#[must_use]
pub fn op_text(op: ProgOp) -> String {
    match op {
        ProgOp::Nop => "nop".into(),
        ProgOp::NopN(n) => format!("nopn {n}"),
        ProgOp::Ret => "ret".into(),
        ProgOp::Load => "load".into(),
        ProgOp::JmpInd => "jmp_ind".into(),
        ProgOp::Label(l) => format!("label {l}"),
        ProgOp::Jmp(l) => format!("jmp {l}"),
        ProgOp::Jcc(l) => format!("jcc {l}"),
        ProgOp::Call(l) => format!("call {l}"),
        ProgOp::Org(o) => format!("org {o:#x}"),
    }
}

/// Parse one op line (inverse of [`op_text`]).
///
/// # Errors
///
/// Returns a message naming the unparsable token.
pub fn parse_op(line: &str) -> Result<ProgOp, String> {
    let mut parts = line.split_whitespace();
    let head = parts.next().ok_or("empty op line")?;
    let arg = parts.next();
    if parts.next().is_some() {
        return Err(format!("trailing tokens on op line {line:?}"));
    }
    let num = |what: &str| -> Result<u64, String> {
        let raw = arg.ok_or_else(|| format!("`{head}` needs a {what}"))?;
        parse_u64(raw).ok_or_else(|| format!("bad {what} {raw:?}"))
    };
    let op = match head {
        "nop" => ProgOp::Nop,
        "nopn" => {
            let n = num("length")?;
            if !(3..=15).contains(&n) {
                return Err(format!("nopn length {n} outside 3..=15"));
            }
            ProgOp::NopN(n as u8)
        }
        "ret" => ProgOp::Ret,
        "load" => ProgOp::Load,
        "jmp_ind" => ProgOp::JmpInd,
        "label" => ProgOp::Label(label_id(num("label id")?)?),
        "jmp" => ProgOp::Jmp(label_id(num("label id")?)?),
        "jcc" => ProgOp::Jcc(label_id(num("label id")?)?),
        "call" => ProgOp::Call(label_id(num("label id")?)?),
        "org" => {
            let o = num("offset")?;
            if o >= PROG_SPAN {
                return Err(format!("org offset {o:#x} outside the victim span"));
            }
            ProgOp::Org(o as u16)
        }
        other => return Err(format!("unknown op {other:?}")),
    };
    match (op, arg) {
        (ProgOp::Nop | ProgOp::Ret | ProgOp::Load | ProgOp::JmpInd, Some(extra)) => {
            Err(format!("`{head}` takes no argument, found {extra:?}"))
        }
        _ => Ok(op),
    }
}

fn label_id(n: u64) -> Result<u8, String> {
    if n < 8 {
        Ok(n as u8)
    } else {
        Err(format!("label id {n} outside 0..8"))
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Assemble an op sequence at `base`, with a terminating `hlt`.
///
/// # Errors
///
/// Returns the assembler's structured [`AsmError`] for malformed
/// sequences — the fuzzer counts these as rejected candidates.
pub fn assemble_ops(base: u64, ops: &[ProgOp]) -> Result<Vec<u8>, AsmError> {
    let mut a = Assembler::new(base);
    for &op in ops {
        match op {
            ProgOp::Nop => a.push(Inst::Nop),
            ProgOp::NopN(n) => a.push(Inst::NopN { len: n }),
            ProgOp::Ret => a.push(Inst::Ret),
            ProgOp::Load => a.push(Inst::Load {
                dst: Reg::R9,
                base: Reg::R8,
                disp: 0,
            }),
            ProgOp::JmpInd => a.push(Inst::JmpInd { src: Reg::R11 }),
            ProgOp::Label(l) => a.label(format!("L{l}")),
            ProgOp::Jmp(l) => a.jmp(format!("L{l}")),
            ProgOp::Jcc(l) => a.jb(format!("L{l}")),
            ProgOp::Call(l) => a.call(format!("L{l}")),
            ProgOp::Org(o) => a.org(base + u64::from(o)),
        };
    }
    a.push(Inst::Halt);
    Ok(a.finish()?.bytes)
}

/// Stable identifier for a training kind in records and corpus files.
#[must_use]
pub fn train_id(train: TrainKind) -> &'static str {
    match train {
        TrainKind::JmpInd => "jmp_ind",
        TrainKind::Jmp => "jmp",
        TrainKind::Jcc => "jcc",
        TrainKind::Ret => "ret",
        TrainKind::NonBranch => "non_branch",
    }
}

/// Inverse of [`train_id`].
#[must_use]
pub fn train_from_id(s: &str) -> Option<TrainKind> {
    Some(match s {
        "jmp_ind" => TrainKind::JmpInd,
        "jmp" => TrainKind::Jmp,
        "jcc" => TrainKind::Jcc,
        "ret" => TrainKind::Ret,
        "non_branch" => TrainKind::NonBranch,
        _ => return None,
    })
}

/// One point in the (program × spec × placement) search space.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Key of the builtin the spec derives from.
    pub base_key: String,
    /// The spec under test (a builtin, or a validated mutant of one).
    pub spec: UarchSpec,
    /// Whether `spec` differs from the builtin `base_key` names.
    pub mutated: bool,
    /// How the predictor is trained before the victim run.
    pub train: TrainKind,
    /// XOR between the training site and the victim site (0 = the
    /// classic in-place Table 1 setup). Non-zero deltas are BTB alias
    /// vectors solved from the spec's fold functions.
    pub delta: u64,
    /// The victim program installed at V.
    pub ops: Vec<ProgOp>,
    /// The trial seed the case was generated from; also seeds the
    /// GF(2) oracle's collision sampling.
    pub seed: u64,
}

/// Solve the spec's BTB fold functions for a non-trivial alias delta:
/// a vector δ over translated bits 12–46 with every restricted fold
/// parity zero, so training at `V ^ δ` populates the entry that serves
/// predictions at `V`. Returns `None` when the restricted nullspace is
/// trivial. Pure function of `(spec, seed)`.
#[must_use]
pub fn alias_delta(spec: &UarchSpec, seed: u64) -> Option<u64> {
    // Only bits the fuzzer may flip: keep the page offset (the BTB is
    // indexed by it directly) and keep b47 (user/kernel half).
    const FLIP_MASK: u64 = 0x0000_7fff_ffff_f000;
    let masked: Vec<u64> = spec.btb.folds.iter().map(|f| f & FLIP_MASK).collect();
    let basis: Vec<u64> = BitMatrix::from_rows(47, &masked)
        .orthogonal_basis()
        .into_iter()
        .filter(|v| *v != 0 && v & 0xfff == 0)
        .collect();
    if basis.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // A random non-empty basis combination, so repeated draws explore
    // the whole alias class rather than one vector.
    let mut delta = basis[rng.gen_range(0..basis.len())];
    for v in &basis {
        if rng.gen_bool(0.25) {
            delta ^= v;
        }
    }
    if delta == 0 {
        delta = basis[0];
    }
    debug_assert!(spec
        .btb
        .folds
        .iter()
        .all(|f| (delta & f).count_ones().is_multiple_of(2)));
    Some(delta)
}

/// Generate the case for one trial. Pure function of `seed`.
#[must_use]
pub fn generate_case(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let builtins = UarchSpec::builtins();
    let base = builtins[rng.gen_range(0..builtins.len())].clone();
    let (spec, mutated) = if rng.gen_bool(0.5) {
        let mutation_seed = rng.gen::<u64>();
        match mutate_spec(&base, mutation_seed) {
            Some(m) => (m, true),
            None => (base.clone(), false),
        }
    } else {
        (base.clone(), false)
    };
    let train = [
        TrainKind::JmpInd,
        TrainKind::Jmp,
        TrainKind::Jcc,
        TrainKind::Ret,
    ][rng.gen_range(0..4usize)];
    let delta = if rng.gen_bool(0.5) {
        let delta_seed = rng.gen::<u64>();
        alias_delta(&spec, delta_seed).unwrap_or(0)
    } else {
        0
    };
    let ops = random_ops(&mut rng);
    FuzzCase {
        base_key: base.key.clone(),
        spec,
        mutated,
        train,
        delta,
        ops,
        seed,
    }
}

fn random_ops(rng: &mut StdRng) -> Vec<ProgOp> {
    let count = rng.gen_range(1..6usize);
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(match rng.gen_range(0..13u32) {
            0 | 1 => ProgOp::Nop,
            2 => ProgOp::NopN(rng.gen_range(3..16u8)),
            3 | 4 => ProgOp::Ret,
            5 => ProgOp::Load,
            6 | 7 => ProgOp::JmpInd,
            8 => ProgOp::Label(rng.gen_range(0..2u8)),
            9 => ProgOp::Jmp(rng.gen_range(0..2u8)),
            10 => ProgOp::Jcc(rng.gen_range(0..2u8)),
            11 => ProgOp::Org(rng.gen_range(0..0x1800u16)),
            _ => ProgOp::Call(rng.gen_range(0..2u8)),
        });
    }
    ops
}

/// What one victim run showed, by both vantage points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakObservation {
    /// Deepest stage per the event-bus [`LeakProbe`].
    pub stage: Stage,
    /// Deepest stage per the machine's `TransientReport` ground truth.
    pub truth: Stage,
    /// The two vantage points disagree — itself a finding (a channel
    /// or probe bug).
    pub disagreement: bool,
}

/// The evaluation of one fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The program never assembled (structured [`AsmError`] slug) or
    /// the geography was impossible; counted by reason.
    Rejected(String),
    /// The machine faulted mid-run.
    Faulted(String),
    /// Ran clean; the leak property did not hold.
    Quiet(Stage),
    /// The leak property held.
    Leak(LeakObservation),
}

struct PageMapper {
    mapped: BTreeSet<u64>,
}

impl PageMapper {
    fn new() -> PageMapper {
        PageMapper {
            mapped: BTreeSet::new(),
        }
    }

    /// Map every page of `[base, base+len)` not already mapped.
    fn ensure(
        &mut self,
        m: &mut Machine,
        base: u64,
        len: u64,
        flags: PageFlags,
    ) -> Result<(), String> {
        let first = base & !0xfff;
        let last = (base + len - 1) & !0xfff;
        let mut page = first;
        loop {
            if self.mapped.insert(page) {
                m.map_range(VirtAddr::new(page), 0x1000, flags)
                    .map_err(|e| e.to_string())?;
            }
            if page == last {
                break;
            }
            page += 0x1000;
        }
        Ok(())
    }
}

fn emit(inst: &Inst) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_into(inst, &mut bytes).expect("canonical instructions encode");
    bytes
}

fn payload_bytes() -> Vec<u8> {
    let mut bytes = emit(&Inst::Load {
        dst: Reg::R9,
        base: Reg::R8,
        disp: 0,
    });
    bytes.push(0xf4);
    bytes
}

/// Evaluate one case: train at `V ^ δ`, install the candidate program
/// at `V`, run, and read the leak property off the event bus. Pure
/// function of the case; candidate-induced failures come back as
/// [`CaseOutcome::Rejected`] / [`CaseOutcome::Faulted`], never panics.
#[must_use]
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    let bytes = match assemble_ops(VICTIM, &case.ops) {
        Ok(b) => b,
        Err(e) => return CaseOutcome::Rejected(asm_reject_slug(&e).into()),
    };
    if bytes.len() as u64 > PROG_SPAN {
        return CaseOutcome::Rejected("program-too-large".into());
    }
    let train_site = VICTIM ^ case.delta;
    if train_site.wrapping_add(DIRECT_SPAN) >= VA_LIMIT {
        return CaseOutcome::Rejected("train-site-out-of-range".into());
    }

    let mut m = Machine::new(case.spec.profile(), 1 << 26);
    let mut pages = PageMapper::new();
    let text = PageFlags::USER_TEXT | PageFlags::WRITE;
    let mut geography = || -> Result<(), String> {
        // The program begins mid-page at V and may `org` forward up to
        // PROG_SPAN, so the mapping must cover [V, V + PROG_SPAN), not
        // just PROG_SPAN bytes from the page base.
        pages.ensure(&mut m, VICTIM & !0xfff, (VICTIM & 0xfff) + PROG_SPAN, text)?;
        pages.ensure(&mut m, train_site & !0xfff, 0x1000, text)?;
        pages.ensure(&mut m, TARGET & !0xfff, 0x1000, text)?;
        pages.ensure(&mut m, HALT & !0xfff, 0x1000, text)?;
        pages.ensure(&mut m, CALL_SITE & !0xfff, 0x1000, text)?;
        pages.ensure(&mut m, PROBE, 0x1000, PageFlags::USER_DATA)?;
        pages.ensure(&mut m, STACK_BASE, 0x4000, PageFlags::USER_DATA)?;
        if matches!(case.train, TrainKind::Jmp | TrainKind::Jcc) {
            pages.ensure(&mut m, (train_site + DIRECT_SPAN) & !0xfff, 0x1000, text)?;
        }
        Ok(())
    };
    if let Err(e) = geography() {
        return CaseOutcome::Faulted(format!("map: {e}"));
    }

    m.poke(VirtAddr::new(TARGET), &payload_bytes());
    m.poke(VirtAddr::new(HALT), &emit(&Inst::Halt));
    m.set_reg(Reg::R8, PROBE);

    // --- Train at the (possibly aliased) site. ----------------------
    let x = VirtAddr::new(train_site);
    let train_result: Result<(), String> = (|| {
        match case.train {
            TrainKind::JmpInd => {
                let mut b = emit(&Inst::JmpInd { src: Reg::R11 });
                b.push(0xf4);
                m.poke(x, &b);
                m.set_reg(Reg::R11, TARGET);
                m.set_reg(Reg::SP, STACK_TOP);
                m.set_pc(x);
                m.run(8).map_err(|e| e.to_string())?;
            }
            TrainKind::Jmp => {
                m.poke(VirtAddr::new(train_site + DIRECT_SPAN), &payload_bytes());
                let mut b = emit(&Inst::Jmp {
                    disp: (DIRECT_SPAN - 5) as i32,
                });
                b.push(0xf4);
                m.poke(x, &b);
                m.set_pc(x);
                m.run(8).map_err(|e| e.to_string())?;
            }
            TrainKind::Jcc => {
                m.poke(VirtAddr::new(train_site + DIRECT_SPAN), &payload_bytes());
                let mut b = emit(&Inst::Jcc {
                    cond: Cond::Eq,
                    disp: (DIRECT_SPAN - 6) as i32,
                });
                b.push(0xf4);
                m.poke(x, &b);
                for _ in 0..10 {
                    m.set_flags(true, false, false);
                    m.set_pc(x);
                    m.run(8).map_err(|e| e.to_string())?;
                }
            }
            TrainKind::Ret => {
                let mut b = emit(&Inst::Ret);
                b.push(0xf4);
                m.poke(x, &b);
                m.set_reg(Reg::SP, STACK_TOP);
                m.poke_u64(VirtAddr::new(STACK_TOP), TARGET);
                m.set_pc(x);
                m.run(8).map_err(|e| e.to_string())?;
                // Plant the RSB: execute a call near the victim so the
                // predicted return target is the payload after it.
                let disp = (HALT as i64 - (CALL_SITE as i64 + 5)) as i32;
                m.poke(VirtAddr::new(CALL_SITE), &emit(&Inst::Call { disp }));
                m.poke(VirtAddr::new(CALL_SITE + 5), &payload_bytes());
                m.set_reg(Reg::SP, STACK_TOP);
                m.set_pc(VirtAddr::new(CALL_SITE));
                m.run(4).map_err(|e| e.to_string())?;
            }
            TrainKind::NonBranch => {}
        }
        Ok(())
    })();
    if let Err(e) = train_result {
        return CaseOutcome::Faulted(format!("train: {e}"));
    }

    // --- Install the candidate program and run the victim. ----------
    m.poke(VirtAddr::new(VICTIM), &bytes);
    m.set_reg(Reg::R11, HALT);
    m.set_reg(Reg::SP, STACK_TOP - 128);
    m.poke_u64(VirtAddr::new(STACK_TOP - 128), HALT);
    m.set_flags(true, false, false);

    let sink = m.attach_sink(LeakProbe::new());
    m.set_pc(VirtAddr::new(VICTIM));
    let run = m.run_collecting(24);
    let probe = m
        .detach_sink_as::<LeakProbe>(sink)
        .expect("probe still attached");
    let reports = match run {
        Ok((_, reports)) => reports,
        Err(e) => return CaseOutcome::Faulted(format!("victim: {e}")),
    };

    let truth = reports
        .iter()
        .map(|r| {
            if !r.loads_dispatched.is_empty() {
                Stage::Ex
            } else if r.decoded {
                Stage::Id
            } else if r.fetched {
                Stage::If
            } else {
                Stage::None
            }
        })
        .max()
        .unwrap_or(Stage::None);
    let stage = probe.deepest_stage();
    if !probe.verdict() {
        return CaseOutcome::Quiet(stage);
    }
    CaseOutcome::Leak(LeakObservation {
        stage,
        truth,
        disagreement: stage != truth,
    })
}

fn asm_reject_slug(e: &AsmError) -> &'static str {
    match e {
        AsmError::UndefinedLabel { .. } => "undefined-label",
        AsmError::DuplicateLabel { .. } => "duplicate-label",
        AsmError::DispOverflow { .. } => "disp-overflow",
        AsmError::OrgBackwards { .. } => "org-backwards",
        AsmError::OrgTooFar { .. } => "org-too-far",
        _ => "encode",
    }
}

/// GF(2) confirmation that a non-zero delta is a structural BTB alias:
/// the spec's own BTB must serve `V` after training at `V ^ δ`, and
/// functions recovered from freshly sampled collisions must all
/// annihilate δ. An in-place case (δ = 0) is trivially confirmed.
#[must_use]
pub fn oracle_confirms(case: &FuzzCase) -> bool {
    if case.delta == 0 {
        return true;
    }
    let mut oracle = BtbOracle::new(case.spec.btb.scheme());
    let victim = VirtAddr::new(VICTIM);
    if !oracle.collides(VirtAddr::new(VICTIM ^ case.delta), victim) {
        return false;
    }
    // Enough samples to span the alias nullspace (dimension ≤ 35 −
    // rank ≈ 22 for the builtins): with fewer, the solver recovers
    // spurious low-weight functions that are orthogonal only to the
    // sampled differences, and the oracle wrongly refutes real aliases.
    let colliders = collect_collisions(&mut oracle, victim, 32, case.seed ^ 0x6f72_6163);
    let functions = recover_functions(&[(VICTIM, colliders)], RecoveryConfig::default());
    functions.iter().all(|f| f.eval(case.delta) == 0)
}

fn builtin_by_key(key: &str) -> Option<UarchSpec> {
    UarchSpec::builtins().into_iter().find(|s| s.key == key)
}

/// Minimize a leaky case: delta-debug the op sequence (greedy removal
/// to a fixpoint), then shrink the spec toward its base builtin,
/// keeping every step that still leaks. Pure function of the case, so
/// minimization is deterministic.
#[must_use]
pub fn minimize_case(case: &FuzzCase) -> FuzzCase {
    let leaks = |c: &FuzzCase| matches!(run_case(c), CaseOutcome::Leak(_));
    let mut cur = case.clone();
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.ops.len() {
            let mut cand = cur.clone();
            cand.ops.remove(i);
            if leaks(&cand) {
                cur = cand;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    if cur.mutated {
        if let Some(base) = builtin_by_key(&cur.base_key) {
            loop {
                let mut advanced = false;
                for spec in shrink_candidates(&cur.spec, &base) {
                    let mut cand = cur.clone();
                    cand.spec = spec;
                    if leaks(&cand) {
                        cur = cand;
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
            if matches_base(&cur.spec, &base) {
                cur.spec = base;
                cur.mutated = false;
            }
        }
    }
    cur
}

/// True when the case sits outside the hand-written Table 1 grid:
/// a mutated spec, an out-of-place training delta, or a victim program
/// that is not one of the five canonical single-instruction victims.
#[must_use]
pub fn beyond_table1(case: &FuzzCase) -> bool {
    if case.mutated || case.delta != 0 {
        return true;
    }
    !matches!(
        case.ops.as_slice(),
        [] | [ProgOp::Nop] | [ProgOp::NopN(_)] | [ProgOp::Ret] | [ProgOp::JmpInd]
    )
}

/// A minimized, double-checked leak the fuzzer discovered.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Trial index that produced the case.
    pub index: usize,
    /// The minimized case.
    pub case: FuzzCase,
    /// Deepest stage per the event-bus probe.
    pub stage: Stage,
    /// Deepest stage per the `TransientReport` ground truth.
    pub truth: Stage,
    /// The probe and the ground truth disagree.
    pub disagreement: bool,
    /// The GF(2) oracle confirms the (possibly aliased) placement.
    pub oracle_confirmed: bool,
    /// Outside the Table 1 grid.
    pub beyond_table1: bool,
}

/// Aggregated output of one discovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoverReport {
    /// Trials evaluated.
    pub budget: usize,
    /// Base seed of the run.
    pub seed: u64,
    /// Minimized leaks, in trial order.
    pub findings: Vec<Finding>,
    /// Trials that ran clean without leaking.
    pub quiet: usize,
    /// Trials whose program never assembled, by reason slug.
    pub rejected: BTreeMap<String, usize>,
    /// Trials that faulted mid-run, by reason.
    pub faulted: usize,
}

impl DiscoverReport {
    /// Total rejected candidates across all reasons.
    #[must_use]
    pub fn rejected_total(&self) -> usize {
        self.rejected.values().sum()
    }
}

enum Disposition {
    Leak(Box<Finding>),
    Quiet,
    Rejected(String),
    Faulted,
}

/// Fuzz configuration: trial budget and base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoverConfig {
    /// Number of (program × spec) candidates to evaluate.
    pub budget: usize,
    /// Base seed; each trial's case derives from
    /// `phantom::runner::trial_seed(seed, index)`.
    pub seed: u64,
}

struct DiscoverScenario {
    cfg: DiscoverConfig,
}

impl Scenario for DiscoverScenario {
    type State = ();
    type Checkpoint = ();
    type Sample = Disposition;
    type Output = DiscoverReport;

    fn trials(&self) -> usize {
        self.cfg.budget
    }

    fn setup(&self) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn checkpoint(&self, (): ()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn fork(&self, (): &()) -> Result<(), ScenarioError> {
        Ok(())
    }

    fn probe(&self, (): &mut (), trial: Trial) -> Result<Disposition, ScenarioError> {
        let case = generate_case(trial.seed);
        Ok(match run_case(&case) {
            CaseOutcome::Rejected(reason) => Disposition::Rejected(reason),
            CaseOutcome::Faulted(_) => Disposition::Faulted,
            CaseOutcome::Quiet(_) => Disposition::Quiet,
            CaseOutcome::Leak(_) => {
                let min = minimize_case(&case);
                match run_case(&min) {
                    CaseOutcome::Leak(obs) => Disposition::Leak(Box::new(Finding {
                        index: trial.index,
                        oracle_confirmed: oracle_confirms(&min),
                        beyond_table1: beyond_table1(&min),
                        stage: obs.stage,
                        truth: obs.truth,
                        disagreement: obs.disagreement,
                        case: min,
                    })),
                    // Minimization only keeps leaking steps, so the
                    // minimum must still leak; anything else is a
                    // harness bug worth surfacing as a fault count.
                    _ => Disposition::Faulted,
                }
            }
        })
    }

    fn score(&self, samples: Vec<Disposition>) -> DiscoverReport {
        let mut report = DiscoverReport {
            budget: self.cfg.budget,
            seed: self.cfg.seed,
            findings: Vec::new(),
            quiet: 0,
            rejected: BTreeMap::new(),
            faulted: 0,
        };
        for sample in samples {
            match sample {
                Disposition::Leak(f) => report.findings.push(*f),
                Disposition::Quiet => report.quiet += 1,
                Disposition::Rejected(reason) => {
                    *report.rejected.entry(reason).or_insert(0) += 1;
                }
                Disposition::Faulted => report.faulted += 1,
            }
        }
        report
    }
}

/// Run a discovery campaign on a default runner.
///
/// # Errors
///
/// Propagates scenario failures.
pub fn run_discover(cfg: DiscoverConfig) -> Result<DiscoverReport, RunnerError> {
    run_discover_on(&TrialRunner::new(), cfg)
}

/// [`run_discover`] on an explicit runner. Output is byte-identical at
/// any worker count.
///
/// # Errors
///
/// Propagates scenario failures.
pub fn run_discover_on(
    runner: &TrialRunner,
    cfg: DiscoverConfig,
) -> Result<DiscoverReport, RunnerError> {
    runner.run(&DiscoverScenario { cfg }, cfg.seed)
}

/// Render the report as `phantom-bench/v1` JSONL: one `discover`
/// record per finding plus a trailing `discover-summary` record. Pure
/// function of the report; carries no wall-clock data.
#[must_use]
pub fn discover_jsonl(report: &DiscoverReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let mut o = JsonValue::object();
        o.set("schema", JsonValue::Str(SCHEMA.into()))
            .set("kind", JsonValue::Str("discover".into()))
            .set("index", JsonValue::Uint(f.index as u64))
            .set("base", JsonValue::Str(f.case.base_key.clone()))
            .set("uarch", JsonValue::Str(f.case.spec.key.clone()))
            .set("mutated", JsonValue::Bool(f.case.mutated))
            .set("train", JsonValue::Str(train_id(f.case.train).into()))
            .set("delta", JsonValue::Uint(f.case.delta))
            .set(
                "prog",
                JsonValue::Str(
                    f.case
                        .ops
                        .iter()
                        .map(|&op| op_text(op))
                        .collect::<Vec<_>>()
                        .join("; "),
                ),
            )
            .set("stage", JsonValue::Str(f.stage.to_string()))
            .set("truth", JsonValue::Str(f.truth.to_string()))
            .set("disagreement", JsonValue::Bool(f.disagreement))
            .set("oracle", JsonValue::Bool(f.oracle_confirmed))
            .set("beyond_table1", JsonValue::Bool(f.beyond_table1));
        out.push_str(&o.to_compact_string());
        out.push('\n');
    }
    let mut reasons = JsonValue::object();
    for (slug, count) in &report.rejected {
        reasons.set(slug.as_str(), JsonValue::Uint(*count as u64));
    }
    let mut s = JsonValue::object();
    s.set("schema", JsonValue::Str(SCHEMA.into()))
        .set("kind", JsonValue::Str("discover-summary".into()))
        .set("seed", JsonValue::Uint(report.seed))
        .set("budget", JsonValue::Uint(report.budget as u64))
        .set("leaks", JsonValue::Uint(report.findings.len() as u64))
        .set(
            "beyond_table1",
            JsonValue::Uint(report.findings.iter().filter(|f| f.beyond_table1).count() as u64),
        )
        .set("quiet", JsonValue::Uint(report.quiet as u64))
        .set("rejected", JsonValue::Uint(report.rejected_total() as u64))
        .set("faulted", JsonValue::Uint(report.faulted as u64))
        .set("reasons", reasons);
    out.push_str(&s.to_compact_string());
    out.push('\n');
    out
}

/// A corpus entry: the case plus the stage its leak must reach.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCase {
    /// The (program × spec × placement) point to replay.
    pub case: FuzzCase,
    /// Minimum stage the replayed leak must reach.
    pub expect: Stage,
}

/// Serialize a case as a `phantom-fuzz-case v1` corpus file. Mutant
/// specs embed their full `uarch` block (exactly as
/// [`UarchSpec::to_block`] prints it) after the program.
#[must_use]
pub fn case_to_text(case: &FuzzCase, expect: Stage) -> String {
    let mut out = String::new();
    out.push_str(CASE_HEADER);
    out.push('\n');
    out.push_str(&format!("base {}\n", case.base_key));
    out.push_str(&format!("seed {:#x}\n", case.seed));
    out.push_str(&format!("train {}\n", train_id(case.train)));
    out.push_str(&format!("delta {:#x}\n", case.delta));
    out.push_str(&format!("expect {expect}\n"));
    out.push_str("prog {\n");
    for &op in &case.ops {
        out.push_str(&format!("  {}\n", op_text(op)));
    }
    out.push_str("}\n");
    if case.mutated {
        out.push('\n');
        out.push_str(&case.spec.to_block());
    }
    out
}

/// Parse a `phantom-fuzz-case v1` corpus file (inverse of
/// [`case_to_text`]). Embedded `uarch` blocks go through the real spec
/// parser, so a malformed block reports the same structured errors the
/// spec loader does.
///
/// # Errors
///
/// Returns a message naming the offending line or field.
pub fn parse_case(text: &str) -> Result<ReplayCase, String> {
    let mut lines = text.lines();
    let header = lines
        .by_ref()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or("empty corpus file")?;
    if header != CASE_HEADER {
        return Err(format!("expected header {CASE_HEADER:?}, found {header:?}"));
    }

    let mut base_key: Option<String> = None;
    let mut seed = 0u64;
    let mut train: Option<TrainKind> = None;
    let mut delta = 0u64;
    let mut expect: Option<Stage> = None;
    let mut in_prog = false;
    for line in lines.by_ref() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "prog {" {
            in_prog = true;
            break;
        }
        let (key, value) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("bad field line {line:?}"))?;
        let value = value.trim();
        match key {
            "base" => base_key = Some(value.to_string()),
            "seed" => seed = parse_u64(value).ok_or_else(|| format!("bad seed {value:?}"))?,
            "train" => {
                train = Some(train_from_id(value).ok_or_else(|| format!("bad train {value:?}"))?);
            }
            "delta" => delta = parse_u64(value).ok_or_else(|| format!("bad delta {value:?}"))?,
            "expect" => {
                expect = Some(match value {
                    "IF" => Stage::If,
                    "ID" => Stage::Id,
                    "EX" => Stage::Ex,
                    other => return Err(format!("bad expect stage {other:?}")),
                });
            }
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    if !in_prog {
        return Err("missing `prog {` block".into());
    }
    let mut ops = Vec::new();
    let mut closed = false;
    for line in lines.by_ref() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "}" {
            closed = true;
            break;
        }
        ops.push(parse_op(line)?);
    }
    if !closed {
        return Err("unterminated `prog {` block".into());
    }

    let base_key = base_key.ok_or("missing `base` field")?;
    let base = builtin_by_key(&base_key).ok_or_else(|| format!("unknown base {base_key:?}"))?;
    let rest: String = lines.collect::<Vec<_>>().join("\n");
    let (spec, mutated) = if rest.trim().is_empty() {
        (base, false)
    } else {
        let specs = parse_specs(&format!("{SPEC_HEADER}\n{rest}")).map_err(|e| e.to_string())?;
        let spec = specs
            .into_iter()
            .next()
            .ok_or("embedded spec section has no uarch block")?;
        (spec, true)
    };
    Ok(ReplayCase {
        case: FuzzCase {
            base_key,
            spec,
            mutated,
            train: train.ok_or("missing `train` field")?,
            delta,
            ops,
            seed,
        },
        expect: expect.ok_or("missing `expect` field")?,
    })
}

/// Replay one corpus entry: the case must still leak to at least the
/// recorded stage, and for aliased placements the GF(2) oracle must
/// still confirm.
///
/// # Errors
///
/// Returns a message describing the regression.
pub fn replay_case(entry: &ReplayCase) -> Result<LeakObservation, String> {
    match run_case(&entry.case) {
        CaseOutcome::Leak(obs) => {
            if obs.stage < entry.expect {
                return Err(format!(
                    "leak regressed: reached {} but corpus expects {}",
                    obs.stage, entry.expect
                ));
            }
            if !oracle_confirms(&entry.case) {
                return Err("GF(2) oracle no longer confirms the alias".into());
            }
            Ok(obs)
        }
        other => Err(format!("case no longer leaks: {other:?}")),
    }
}

/// Write up to `max` deduplicated corpus files for the report's
/// oracle-confirmed findings, beyond-Table-1 entries first. File names
/// are a pure function of the findings. Returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_corpus(
    dir: &Path,
    report: &DiscoverReport,
    max: usize,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut seen = BTreeSet::new();
    let mut paths = Vec::new();
    let beyond = report.findings.iter().filter(|f| f.beyond_table1);
    let grid = report.findings.iter().filter(|f| !f.beyond_table1);
    for f in beyond.chain(grid) {
        if paths.len() >= max {
            break;
        }
        if !f.oracle_confirmed {
            continue;
        }
        let prog: Vec<String> = f.case.ops.iter().map(|&op| op_text(op)).collect();
        let sig = format!(
            "{}|{}|{}|{:x}|{}",
            f.case.spec.key,
            train_id(f.case.train),
            f.case.mutated,
            f.case.delta,
            prog.join(";")
        );
        if !seen.insert(sig) {
            continue;
        }
        let name = format!(
            "{:04}-{}-{}.case",
            f.index,
            f.case.base_key,
            train_id(f.case.train)
        );
        let path = dir.join(name);
        std::fs::write(&path, case_to_text(&f.case, f.stage))?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip_through_text() {
        let all = [
            ProgOp::Nop,
            ProgOp::NopN(7),
            ProgOp::Ret,
            ProgOp::Load,
            ProgOp::JmpInd,
            ProgOp::Label(1),
            ProgOp::Jmp(0),
            ProgOp::Jcc(1),
            ProgOp::Call(0),
            ProgOp::Org(0x140),
        ];
        for op in all {
            assert_eq!(parse_op(&op_text(op)), Ok(op), "{}", op_text(op));
        }
        assert!(parse_op("frobnicate").is_err());
        assert!(parse_op("nopn 2").is_err());
        assert!(parse_op("org 0x2000").is_err());
        assert!(parse_op("nop 3").is_err());
    }

    #[test]
    fn malformed_programs_are_rejections_not_panics() {
        // An undefined label and a backwards org both come back as
        // structured rejections — the satellite bug fixes this fuzzer
        // leans on.
        let jmp = run_case(&FuzzCase {
            ops: vec![ProgOp::Jmp(0)],
            ..known_leaky(TrainKind::JmpInd)
        });
        assert_eq!(jmp, CaseOutcome::Rejected("undefined-label".into()));
        let org = run_case(&FuzzCase {
            ops: vec![ProgOp::Nop, ProgOp::Org(0)],
            ..known_leaky(TrainKind::JmpInd)
        });
        assert_eq!(org, CaseOutcome::Rejected("org-backwards".into()));
    }

    fn known_leaky(train: TrainKind) -> FuzzCase {
        FuzzCase {
            base_key: "zen3".into(),
            spec: UarchSpec::zen3(),
            mutated: false,
            train,
            delta: 0,
            ops: vec![ProgOp::Nop],
            seed: 1,
        }
    }

    #[test]
    fn canonical_in_place_case_leaks_at_id_on_zen3() {
        match run_case(&known_leaky(TrainKind::JmpInd)) {
            CaseOutcome::Leak(obs) => {
                assert_eq!(obs.stage, Stage::Id);
                assert!(!obs.disagreement, "probe and ground truth agree");
            }
            other => panic!("expected a leak, got {other:?}"),
        }
    }

    #[test]
    fn alias_delta_is_a_real_collision() {
        for (spec, seed) in [(UarchSpec::zen3(), 3u64), (UarchSpec::zen1(), 9)] {
            let delta = alias_delta(&spec, seed).expect("nullspace is non-trivial");
            assert_ne!(delta, 0);
            assert_eq!(delta & 0xfff, 0, "page offset preserved");
            assert!(delta < VA_LIMIT, "b47 untouched");
            let mut oracle = BtbOracle::new(spec.btb.scheme());
            assert!(
                oracle.collides(VirtAddr::new(VICTIM ^ delta), VirtAddr::new(VICTIM)),
                "delta {delta:#x} must alias on {}",
                spec.key
            );
        }
    }

    #[test]
    fn out_of_place_training_leaks_and_oracle_confirms() {
        let spec = UarchSpec::zen3();
        let delta = alias_delta(&spec, 3).expect("zen3 has alias freedom");
        let case = FuzzCase {
            delta,
            ..known_leaky(TrainKind::JmpInd)
        };
        match run_case(&case) {
            CaseOutcome::Leak(obs) => assert!(obs.stage >= Stage::Id),
            other => panic!("aliased training should still leak, got {other:?}"),
        }
        assert!(oracle_confirms(&case), "structural alias must confirm");
        // A non-alias delta must be refuted by the behavioural check.
        let bogus = FuzzCase {
            delta: 1 << 13,
            ..known_leaky(TrainKind::JmpInd)
        };
        assert!(
            !oracle_confirms(&bogus),
            "zen3 folds reject a lone bit flip"
        );
    }

    #[test]
    fn minimizer_strips_junk_and_keeps_the_leak() {
        let noisy = FuzzCase {
            ops: vec![ProgOp::Nop, ProgOp::NopN(5), ProgOp::Nop],
            ..known_leaky(TrainKind::JmpInd)
        };
        assert!(matches!(run_case(&noisy), CaseOutcome::Leak(_)));
        let min = minimize_case(&noisy);
        assert!(min.ops.is_empty(), "a bare hlt still leaks: {:?}", min.ops);
        assert!(matches!(run_case(&min), CaseOutcome::Leak(_)));
        // Determinism: minimizing twice gives the same case.
        assert_eq!(min, minimize_case(&noisy));
    }

    #[test]
    fn generate_case_is_pure_in_the_seed() {
        for seed in [0u64, 1, 0xdead_beef] {
            assert_eq!(generate_case(seed), generate_case(seed));
        }
        assert_ne!(generate_case(1), generate_case(2));
    }

    #[test]
    fn corpus_text_round_trips() {
        let plain = known_leaky(TrainKind::Ret);
        let text = case_to_text(&plain, Stage::Id);
        let back = parse_case(&text).expect("parses");
        assert_eq!(back.case, plain);
        assert_eq!(back.expect, Stage::Id);

        let mutant = FuzzCase {
            spec: mutate_spec(&UarchSpec::zen3(), 7).expect("seed 7 mutates"),
            mutated: true,
            ops: vec![ProgOp::Label(0), ProgOp::Nop, ProgOp::Jcc(0)],
            delta: 0x40_0000,
            ..known_leaky(TrainKind::Jcc)
        };
        let text = case_to_text(&mutant, Stage::Ex);
        let back = parse_case(&text).expect("mutant parses");
        assert_eq!(back.case, mutant);

        // A corrupted embedded spec block reports the spec parser's
        // structured error, not a panic.
        let broken = text.replace("uarch zen3-m", "uarch zen3-m {\nuarch nested-");
        assert!(parse_case(&broken).is_err());
    }

    #[test]
    fn discover_jsonl_is_byte_identical_across_worker_counts() {
        let cfg = DiscoverConfig {
            budget: 6,
            seed: 11,
        };
        let one = run_discover_on(&TrialRunner::with_threads(1), cfg).unwrap();
        let four = run_discover_on(&TrialRunner::with_threads(4), cfg).unwrap();
        assert_eq!(discover_jsonl(&one), discover_jsonl(&four));
        assert_eq!(
            one.findings.len() + one.quiet + one.rejected_total() + one.faulted,
            cfg.budget
        );
    }
}
