//! A three-level cache hierarchy: split L1I/L1D over an inclusive L2.
//!
//! The exploits probe different levels: the kernel-image KASLR break uses
//! L1I Prime+Probe, the physmap break uses **L2** Prime+Probe (with 2 MiB
//! huge pages for physical contiguity), and Flush+Reload hits in shared
//! memory. Inclusivity matters: priming L2 back-invalidates L1 lines, so
//! a victim refetch is visible at L2 probe time.

use crate::geometry::CacheGeometry;
use crate::setassoc::{Replacement, SetAssocCache};

/// Which cache level an access ultimately hit in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Hit in the L1 (I or D).
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed the whole hierarchy (memory access).
    Memory,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::L1 => f.write_str("L1"),
            Level::L2 => f.write_str("L2"),
            Level::Memory => f.write_str("memory"),
        }
    }
}

/// Latencies and shapes for a [`CacheHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1I shape.
    pub l1i: CacheGeometry,
    /// L1D shape.
    pub l1d: CacheGeometry,
    /// Unified, inclusive L2 shape.
    pub l2: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Memory latency in cycles.
    pub memory_latency: u64,
    /// Replacement policy for all levels.
    pub replacement: Replacement,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheGeometry::l1(),
            l1d: CacheGeometry::l1(),
            l2: CacheGeometry::l2(),
            l1_latency: 4,
            l2_latency: 14,
            memory_latency: 200,
            replacement: Replacement::Lru,
        }
    }
}

/// Split L1I/L1D over an inclusive unified L2, with latency accounting.
///
/// Addresses are physical: the experiments translate first, and an access
/// that faults never reaches the hierarchy (that *is* primitive P1/P2's
/// signal).
///
/// # Examples
///
/// ```
/// use phantom_cache::{CacheHierarchy, HierarchyConfig, Level};
/// let mut h = CacheHierarchy::new(HierarchyConfig::default());
/// let (level, cycles) = h.access_data(0x4000);
/// assert_eq!(level, Level::Memory);
/// let (level, cycles2) = h.access_data(0x4000);
/// assert_eq!(level, Level::L1);
/// assert!(cycles2 < cycles);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
}

impl CacheHierarchy {
    /// Create an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> CacheHierarchy {
        CacheHierarchy {
            config,
            l1i: SetAssocCache::new(config.l1i, config.replacement),
            l1d: SetAssocCache::new(config.l1d, config.replacement),
            l2: SetAssocCache::new(config.l2, config.replacement),
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    fn access(&mut self, addr: u64, instruction: bool) -> (Level, u64) {
        let cfg = self.config;
        let l1 = if instruction {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if l1.access(addr).hit {
            return (Level::L1, cfg.l1_latency);
        }
        let out2 = self.l2.access(addr);
        // Inclusive L2: an eviction from L2 back-invalidates both L1s.
        if let Some(victim) = out2.evicted {
            self.l1i.flush_line(victim);
            self.l1d.flush_line(victim);
        }
        if out2.hit {
            (Level::L2, cfg.l1_latency + cfg.l2_latency)
        } else {
            (
                Level::Memory,
                cfg.l1_latency + cfg.l2_latency + cfg.memory_latency,
            )
        }
    }

    /// Data access (load/store path). Returns the level hit and the
    /// latency in cycles.
    pub fn access_data(&mut self, addr: u64) -> (Level, u64) {
        self.access(addr, false)
    }

    /// Instruction fetch. Returns the level hit and the latency in cycles.
    pub fn access_inst(&mut self, addr: u64) -> (Level, u64) {
        self.access(addr, true)
    }

    /// Non-destructive probe of the L1I (for experiments inspecting
    /// state without perturbing it).
    pub fn probe_l1i(&self, addr: u64) -> bool {
        self.l1i.probe(addr)
    }

    /// Non-destructive probe of the L1D.
    pub fn probe_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Non-destructive probe of the L2.
    pub fn probe_l2(&self, addr: u64) -> bool {
        self.l2.probe(addr)
    }

    /// `clflush` semantics: remove the line from every level.
    pub fn flush_line(&mut self, addr: u64) {
        self.l1i.flush_line(addr);
        self.l1d.flush_line(addr);
        self.l2.flush_line(addr);
    }

    /// Flush the entire hierarchy (e.g. across reboots in experiments).
    pub fn flush_all(&mut self) {
        self.l1i.flush_all();
        self.l1d.flush_all();
        self.l2.flush_all();
    }

    /// Open a new restore epoch on all three levels; see
    /// [`SetAssocCache::begin_epoch`]. Call on the live hierarchy just
    /// before cloning it into a snapshot.
    pub fn begin_epoch(&mut self) {
        self.l1i.begin_epoch();
        self.l1d.begin_epoch();
        self.l2.begin_epoch();
    }

    /// Rewind all three levels to `snap`; O(sets touched since the
    /// epoch opened) when `snap` came from this hierarchy's own
    /// [`begin_epoch`](CacheHierarchy::begin_epoch)-then-clone, a full
    /// copy otherwise. See [`SetAssocCache::restore_from`].
    pub fn restore_from(&mut self, snap: &CacheHierarchy) {
        self.config = snap.config;
        self.l1i.restore_from(&snap.l1i);
        self.l1d.restore_from(&snap.l1d);
        self.l2.restore_from(&snap.l2);
    }

    /// The L1I cache, for set-granular inspection by Prime+Probe.
    pub fn l1i(&self) -> &SetAssocCache {
        &self.l1i
    }

    /// The L1D cache.
    pub fn l1d(&self) -> &SetAssocCache {
        &self.l1d
    }

    /// The L2 cache.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

impl Default for CacheHierarchy {
    fn default() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_fills_all_levels() {
        let mut h = CacheHierarchy::default();
        let (lvl, lat) = h.access_data(0x1000);
        assert_eq!(lvl, Level::Memory);
        assert_eq!(lat, 4 + 14 + 200);
        assert!(h.probe_l1d(0x1000));
        assert!(h.probe_l2(0x1000));
        assert!(!h.probe_l1i(0x1000), "data access does not fill L1I");
    }

    #[test]
    fn l2_hit_after_l1_flush() {
        let mut h = CacheHierarchy::default();
        h.access_data(0x1000);
        h.l1d.flush_line(0x1000);
        let (lvl, lat) = h.access_data(0x1000);
        assert_eq!(lvl, Level::L2);
        assert_eq!(lat, 4 + 14);
    }

    #[test]
    fn inst_and_data_paths_are_split() {
        let mut h = CacheHierarchy::default();
        h.access_inst(0x2000);
        assert!(h.probe_l1i(0x2000));
        assert!(!h.probe_l1d(0x2000));
        // Both share L2: a data access to the same line now hits L2.
        let (lvl, _) = h.access_data(0x2000);
        assert_eq!(lvl, Level::L2);
    }

    #[test]
    fn inclusive_eviction_back_invalidates_l1() {
        let mut h = CacheHierarchy::default();
        let g2 = h.config.l2;
        let target = 0x4000u64;
        h.access_data(target);
        assert!(h.probe_l1d(target));
        // Evict the target's L2 set by touching `ways` conflicting lines.
        let set = g2.set_index(target);
        for i in 1..=g2.ways as u64 {
            let conflict = g2.compose(g2.tag(target) + i, set);
            h.access_data(conflict);
        }
        assert!(!h.probe_l2(target), "L2 line evicted");
        assert!(!h.probe_l1d(target), "inclusivity back-invalidates L1D");
    }

    #[test]
    fn flush_line_clears_everywhere() {
        let mut h = CacheHierarchy::default();
        h.access_inst(0x3000);
        h.access_data(0x3000);
        h.flush_line(0x3000);
        assert!(!h.probe_l1i(0x3000));
        assert!(!h.probe_l1d(0x3000));
        assert!(!h.probe_l2(0x3000));
    }

    #[test]
    fn latencies_are_monotone_in_depth() {
        let cfg = HierarchyConfig::default();
        let mut h = CacheHierarchy::new(cfg);
        let (_, mem) = h.access_data(0x9000);
        h.l1d.flush_line(0x9000);
        let (_, l2) = h.access_data(0x9000);
        let (_, l1) = h.access_data(0x9000);
        assert!(l1 < l2 && l2 < mem);
    }
}
