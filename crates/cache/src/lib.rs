//! Cache models for the Phantom reproduction.
//!
//! Phantom's observation channels (paper §5.1, Figure 3) are built on
//! three microarchitectural structures, all modeled here:
//!
//! 1. the **instruction cache** — transient *fetch* of a phantom target
//!    fills an I-cache line, observable with Prime+Probe/timing;
//! 2. the **µop cache** — transient *decode* fills µop-cache ways,
//!    observable via performance-counter deltas;
//! 3. the **data cache** — transient *execution* of a load fills a D-cache
//!    line, observable with Prime+Probe or Flush+Reload.
//!
//! The [`SetAssocCache`] model is generic over geometry and replacement
//! policy; [`CacheHierarchy`] wires L1I/L1D and an inclusive L2 together
//! with hit/miss latencies; [`UopCache`] models the 64-set, 8-way
//! decoded-µop cache the paper reverse engineered ("always 64 8-way sets,
//! selected by the lower 12 bits of the instruction's virtual address");
//! [`perf::PerfCounters`] provides the counters used by the ID channel.
//!
//! # Examples
//!
//! ```
//! use phantom_cache::{CacheGeometry, Replacement, SetAssocCache};
//!
//! let mut l1 = SetAssocCache::new(CacheGeometry::l1(), Replacement::Lru);
//! assert!(!l1.access(0x1000).hit);
//! assert!(l1.access(0x1000).hit); // second touch hits
//! l1.flush_line(0x1000);
//! assert!(!l1.probe(0x1000));
//! ```

pub mod geometry;
pub mod hierarchy;
pub mod perf;
pub mod setassoc;
pub mod uopcache;

pub use geometry::CacheGeometry;
pub use hierarchy::{CacheHierarchy, HierarchyConfig, Level};
pub use perf::{Event, PerfCounters};
pub use setassoc::{AccessOutcome, Replacement, SetAssocCache};
pub use uopcache::UopCache;

#[cfg(test)]
mod proptests;
