//! The decoded-µop cache (op cache / DSB).
//!
//! §5.1 of the paper reverse engineers the µop cache with performance
//! counters and finds that on every tested part it has **64 sets, 8 ways,
//! selected by the lower 12 bits of the instruction's virtual address**.
//! The ID observation channel works by priming one µop-cache set with a
//! jmp-series (7 direct branches 4096 bytes apart, which all map to the
//! same set), triggering the suspected phantom decode, and counting how
//! many primed ways were evicted.

use crate::geometry::CacheGeometry;
use crate::setassoc::{AccessOutcome, Replacement, SetAssocCache};

/// The µop cache: presence of *decoded* instruction lines, indexed by
/// virtual address bits \[11:6\].
///
/// # Examples
///
/// ```
/// use phantom_cache::UopCache;
/// let mut uc = UopCache::new();
/// // Two addresses 4096 bytes apart land in the same set…
/// assert_eq!(UopCache::set_of(0x10ac0), UopCache::set_of(0x11ac0));
/// // …and filling decoded lines makes later lookups hit.
/// uc.fill(0x10ac0);
/// assert!(uc.lookup(0x10ac0));
/// ```
#[derive(Debug, Clone)]
pub struct UopCache {
    cache: SetAssocCache,
    hits: u64,
    misses: u64,
}

impl UopCache {
    /// An empty µop cache with the paper's geometry (64 sets × 8 ways).
    pub fn new() -> UopCache {
        UopCache::with_geometry(CacheGeometry::uop_cache())
    }

    /// An empty µop cache with an explicit geometry — what-if uarch
    /// specs can deviate from the paper's 64×8 shape.
    pub fn with_geometry(geometry: CacheGeometry) -> UopCache {
        UopCache {
            cache: SetAssocCache::new(geometry, Replacement::Lru),
            hits: 0,
            misses: 0,
        }
    }

    /// The µop-cache set an instruction address maps to under the
    /// *paper's* geometry: bits \[11:6\]. For a custom geometry use
    /// [`UopCache::geometry`]`().set_index(va)`.
    pub fn set_of(va: u64) -> usize {
        CacheGeometry::uop_cache().set_index(va)
    }

    /// Look up whether the line holding `va` has decoded µops cached.
    /// Counts a hit or miss (the dispatch-path decision the counters see).
    pub fn dispatch_lookup(&mut self, va: u64) -> bool {
        let hit = self.cache.probe(va);
        if hit {
            self.hits += 1;
            // A hit refreshes replacement state.
            self.cache.access(va);
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Non-counting presence check.
    pub fn lookup(&self, va: u64) -> bool {
        self.cache.probe(va)
    }

    /// Insert decoded µops for the line holding `va` (called by the
    /// decode stage — including for *transiently* decoded phantom
    /// targets, which is exactly observation O2). Returns the eviction
    /// outcome.
    pub fn fill(&mut self, va: u64) -> AccessOutcome {
        self.cache.access(va)
    }

    /// Invalidate the whole structure (context switch / IBPB-like flush).
    pub fn flush_all(&mut self) {
        self.cache.flush_all();
    }

    /// Open a new restore epoch; see [`SetAssocCache::begin_epoch`].
    pub fn begin_epoch(&mut self) {
        self.cache.begin_epoch();
    }

    /// Rewind to `snap` — O(sets touched since the epoch opened) when
    /// `snap` shares this cache's epoch, a full copy otherwise. See
    /// [`SetAssocCache::restore_from`].
    pub fn restore_from(&mut self, snap: &UopCache) {
        self.cache.restore_from(&snap.cache);
        self.hits = snap.hits;
        self.misses = snap.misses;
    }

    /// Number of valid ways in `set`.
    pub fn set_occupancy(&self, set: usize) -> usize {
        self.cache.set_occupancy(set)
    }

    /// Line addresses currently cached in `set`.
    pub fn set_contents(&self, set: usize) -> Vec<u64> {
        self.cache.set_contents(set)
    }

    /// Lifetime dispatch hits (`op_cache_hit_miss.op_cache_hit`).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime dispatch misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The geometry (64 sets × 8 ways × 64 B).
    pub fn geometry(&self) -> CacheGeometry {
        self.cache.geometry()
    }
}

impl Default for UopCache {
    fn default() -> UopCache {
        UopCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_selection_uses_low_12_bits() {
        // Same low 12 bits -> same set, regardless of high bits.
        assert_eq!(UopCache::set_of(0x0000_0ac0), UopCache::set_of(0xffff_1ac0));
        // Bits [5:0] don't matter (within a line).
        assert_eq!(UopCache::set_of(0xac0), UopCache::set_of(0xaff));
        // 64 distinct sets across a page.
        let sets: std::collections::HashSet<_> =
            (0..4096u64).step_by(64).map(UopCache::set_of).collect();
        assert_eq!(sets.len(), 64);
    }

    #[test]
    fn jmp_series_addresses_alias() {
        // The paper's priming jmp-series: 7 branches separated by 4096 B.
        let base = 0x40_0ac0u64;
        let sets: Vec<_> = (0..7).map(|i| UopCache::set_of(base + i * 4096)).collect();
        assert!(sets.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn priming_then_conflicting_fill_evicts() {
        let mut uc = UopCache::new();
        let base = 0x10_0ac0u64;
        // Prime all 8 ways of the set.
        for i in 0..8 {
            uc.fill(base + i * 4096);
        }
        assert_eq!(uc.set_occupancy(UopCache::set_of(base)), 8);
        // A phantom decode at a colliding address evicts a primed way.
        let out = uc.fill(0xdead_0ac0);
        assert!(out.evicted.is_some());
        // One of the primed lines is now a dispatch miss.
        let miss_count = (0..8).filter(|i| !uc.lookup(base + i * 4096)).count();
        assert_eq!(miss_count, 1);
    }

    #[test]
    fn dispatch_lookup_counts() {
        let mut uc = UopCache::new();
        uc.dispatch_lookup(0x40); // miss
        uc.fill(0x40);
        uc.dispatch_lookup(0x40); // hit
        assert_eq!(uc.hits(), 1);
        assert_eq!(uc.misses(), 1);
    }

    #[test]
    fn flush_clears_everything() {
        let mut uc = UopCache::new();
        uc.fill(0x40);
        uc.flush_all();
        assert!(!uc.lookup(0x40));
    }
}
