//! Cache geometry: sets, ways, line size, and index/tag extraction.

use std::fmt;

/// The shape of a set-associative cache.
///
/// # Examples
///
/// ```
/// use phantom_cache::CacheGeometry;
/// let g = CacheGeometry::new(64, 8, 64);
/// assert_eq!(g.capacity_bytes(), 32 * 1024);
/// assert_eq!(g.set_index(0x1000), (0x1000 >> 6) & 63);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_size: usize,
}

impl CacheGeometry {
    /// Create a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_size` is not a power of two, or if any
    /// dimension is zero.
    pub fn new(sets: usize, ways: usize, line_size: usize) -> CacheGeometry {
        match CacheGeometry::try_new(sets, ways, line_size) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`CacheGeometry::new`]: returns a description of the
    /// violated constraint instead of panicking. Used by the uarch spec
    /// layer, where geometry comes from user-authored text.
    pub fn try_new(sets: usize, ways: usize, line_size: usize) -> Result<CacheGeometry, String> {
        if !sets.is_power_of_two() {
            return Err(format!("sets must be a power of two (got {sets})"));
        }
        if !line_size.is_power_of_two() {
            return Err(format!(
                "line size must be a power of two (got {line_size})"
            ));
        }
        if ways == 0 {
            return Err("ways must be nonzero".to_string());
        }
        Ok(CacheGeometry {
            sets,
            ways,
            line_size,
        })
    }

    /// A 32 KiB, 8-way, 64 B-line L1 (Zen L1I/L1D shape).
    pub fn l1() -> CacheGeometry {
        CacheGeometry::new(64, 8, 64)
    }

    /// A 512 KiB, 8-way, 64 B-line L2 (Zen 2 per-core L2 shape).
    pub fn l2() -> CacheGeometry {
        CacheGeometry::new(1024, 8, 64)
    }

    /// The 64-set, 8-way µop cache of §5.1 (line granularity 64 B: set is
    /// selected by address bits \[11:6\]).
    pub fn uop_cache() -> CacheGeometry {
        CacheGeometry::new(64, 8, 64)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_size
    }

    /// log2 of the line size.
    pub fn line_shift(&self) -> u32 {
        self.line_size.trailing_zeros()
    }

    /// The set index for an address.
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift()) as usize) & (self.sets - 1)
    }

    /// The tag for an address: the line address above the index bits.
    pub fn tag(&self, addr: u64) -> u64 {
        addr >> self.line_shift() >> self.sets.trailing_zeros()
    }

    /// The line-aligned base address.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.line_size as u64 - 1)
    }

    /// An address that maps to `set` with tag `tag` (inverse of
    /// [`CacheGeometry::set_index`]/[`CacheGeometry::tag`]); used to build
    /// eviction sets.
    pub fn compose(&self, tag: u64, set: usize) -> u64 {
        debug_assert!(set < self.sets);
        (tag << self.sets.trailing_zeros() | set as u64) << self.line_shift()
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB ({} sets x {} ways x {} B lines)",
            self.capacity_bytes() / 1024,
            self.sets,
            self.ways,
            self.line_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_shapes() {
        assert_eq!(CacheGeometry::l1().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheGeometry::l2().capacity_bytes(), 512 * 1024);
        assert_eq!(CacheGeometry::uop_cache().sets, 64);
        assert_eq!(CacheGeometry::uop_cache().ways, 8);
    }

    #[test]
    fn index_and_tag_partition_the_address() {
        let g = CacheGeometry::l1();
        let addr = 0xdead_beef_cafe;
        let rebuilt = g.compose(g.tag(addr), g.set_index(addr));
        assert_eq!(rebuilt, g.line_base(addr));
    }

    #[test]
    fn same_set_different_tag_addresses_differ_above_index() {
        let g = CacheGeometry::l1();
        // Addresses 4096 B apart share L1 set index only if sets*line == 4096.
        assert_eq!(g.set_index(0x0040), g.set_index(0x0040 + 4096));
        assert_ne!(g.tag(0x0040), g.tag(0x0040 + 4096));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        CacheGeometry::new(3, 8, 64);
    }

    #[test]
    fn try_new_reports_each_violation() {
        assert_eq!(CacheGeometry::try_new(64, 8, 64), Ok(CacheGeometry::l1()));
        assert!(CacheGeometry::try_new(3, 8, 64)
            .unwrap_err()
            .contains("sets"));
        assert!(CacheGeometry::try_new(64, 0, 64)
            .unwrap_err()
            .contains("ways"));
        assert!(CacheGeometry::try_new(64, 8, 48)
            .unwrap_err()
            .contains("line size"));
        assert!(CacheGeometry::try_new(0, 8, 64).is_err(), "zero sets");
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            CacheGeometry::l1().to_string(),
            "32 KiB (64 sets x 8 ways x 64 B lines)"
        );
    }
}
