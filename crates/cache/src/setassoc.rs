//! A generic set-associative cache with pluggable replacement.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::geometry::CacheGeometry;

/// Source of snapshot-epoch tokens (see [`SetAssocCache::begin_epoch`]).
/// Process-global so two caches hold equal tokens only when one was
/// cloned from the other with no epoch boundary in between.
static EPOCH_TOKENS: AtomicU64 = AtomicU64::new(1);

fn next_epoch_token() -> u64 {
    EPOCH_TOKENS.fetch_add(1, Ordering::Relaxed)
}

/// Replacement policy for a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU (as real L1s approximate); deterministic.
    TreePlru,
    /// First-in first-out.
    Fifo,
}

/// Result of a caching access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already present.
    pub hit: bool,
    /// The line address (not the full address) evicted to make room, if
    /// any.
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU timestamp (Lru), insertion order (Fifo).
    stamp: u64,
}

#[derive(Debug, Clone)]
struct Set {
    lines: Vec<Line>,
    /// Tree-PLRU state bits (ways-1 internal nodes).
    plru: u64,
}

/// A set-associative cache of line addresses.
///
/// The cache stores *presence* only — data contents live in
/// [`phantom_mem::PhysMemory`](https://docs.rs/phantom-mem). That is all
/// the side channels need: hit/miss is the signal.
///
/// # Examples
///
/// ```
/// use phantom_cache::{CacheGeometry, Replacement, SetAssocCache};
/// let mut c = SetAssocCache::new(CacheGeometry::new(2, 2, 64), Replacement::Lru);
/// // Fill set 0 beyond associativity: the oldest line is evicted.
/// c.access(0x000);
/// c.access(0x080);
/// let out = c.access(0x100);
/// assert_eq!(out.evicted, Some(0x000));
/// assert!(!c.probe(0x000));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    replacement: Replacement,
    sets: Vec<Set>,
    clock: u64,
    hits: u64,
    misses: u64,
    /// Epoch token shared with the snapshot this cache was cloned from
    /// (if any). Equal tokens guarantee every set *not* flagged dirty
    /// still holds the snapshot's exact contents, which is what lets
    /// [`restore_from`](SetAssocCache::restore_from) copy only the
    /// dirty sets.
    epoch_token: u64,
    /// Per-set "mutated since the current epoch opened" flags.
    dirty: Vec<bool>,
    /// Indices flagged in `dirty`, in first-mutation order.
    dirty_sets: Vec<u32>,
}

impl SetAssocCache {
    /// Create an empty cache.
    pub fn new(geometry: CacheGeometry, replacement: Replacement) -> SetAssocCache {
        let sets = (0..geometry.sets)
            .map(|_| Set {
                lines: (0..geometry.ways)
                    .map(|_| Line {
                        tag: 0,
                        valid: false,
                        stamp: 0,
                    })
                    .collect(),
                plru: 0,
            })
            .collect();
        SetAssocCache {
            geometry,
            replacement,
            sets,
            clock: 0,
            hits: 0,
            misses: 0,
            epoch_token: next_epoch_token(),
            dirty: vec![false; geometry.sets],
            dirty_sets: Vec::new(),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, set_idx: usize) {
        if !self.dirty[set_idx] {
            self.dirty[set_idx] = true;
            self.dirty_sets.push(set_idx as u32);
        }
    }

    /// Open a new restore epoch: draw a fresh token and forget the
    /// dirty-set log. Call on the *live* cache immediately before
    /// cloning it into a snapshot — the clone then shares the token,
    /// both sides start clean, and every later mutation of the live
    /// cache lands in its dirty log, which is exactly the set of sets
    /// [`restore_from`](SetAssocCache::restore_from) must copy back.
    pub fn begin_epoch(&mut self) {
        self.epoch_token = next_epoch_token();
        for &i in &self.dirty_sets {
            self.dirty[i as usize] = false;
        }
        self.dirty_sets.clear();
    }

    /// Rewind to `snap`. When `snap` shares this cache's epoch token
    /// (the [`begin_epoch`](SetAssocCache::begin_epoch)-then-clone
    /// protocol), only the sets touched since that epoch opened are
    /// copied — O(dirty) instead of O(cache). Any other snapshot falls
    /// back to a full copy and adopts its token, so a later rewind to
    /// the same snapshot is fast again. Either way the result is
    /// bit-identical to `*self = snap.clone()` plus a clean dirty log.
    pub fn restore_from(&mut self, snap: &SetAssocCache) {
        self.clock = snap.clock;
        self.hits = snap.hits;
        self.misses = snap.misses;
        if self.epoch_token == snap.epoch_token {
            for &i in &self.dirty_sets {
                let i = i as usize;
                self.sets[i].lines.copy_from_slice(&snap.sets[i].lines);
                self.sets[i].plru = snap.sets[i].plru;
                self.dirty[i] = false;
            }
            self.dirty_sets.clear();
        } else {
            self.geometry = snap.geometry;
            self.replacement = snap.replacement;
            self.sets.clone_from(&snap.sets);
            self.epoch_token = snap.epoch_token;
            self.dirty.clone_from(&snap.dirty);
            self.dirty_sets.clone_from(&snap.dirty_sets);
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn plru_choose(plru: u64, ways: usize) -> usize {
        // Walk the implicit binary tree: bit clear -> go left, set -> right;
        // victim is where the pointers lead.
        let mut node = 0usize;
        let mut idx = 0usize;
        let mut span = ways;
        while span > 1 {
            let right = (plru >> node) & 1 == 1;
            span /= 2;
            if right {
                idx += span;
            }
            node = 2 * node + if right { 2 } else { 1 };
        }
        idx
    }

    fn plru_touch(plru: &mut u64, ways: usize, way: usize) {
        // Point every node on the path *away* from `way`.
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut span = ways;
        while span > 1 {
            span /= 2;
            let goes_right = way >= lo + span;
            if goes_right {
                *plru &= !(1 << node); // next victim: left
                lo += span;
                node = 2 * node + 2;
            } else {
                *plru |= 1 << node; // next victim: right
                node = 2 * node + 1;
            }
        }
    }

    /// Touch `addr`: hit updates replacement state, miss inserts the line
    /// (possibly evicting). Returns the outcome.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.clock += 1;
        let set_idx = self.geometry.set_index(addr);
        self.mark_dirty(set_idx);
        let tag = self.geometry.tag(addr);
        let ways = self.geometry.ways;
        let line_shift = self.geometry.line_shift();
        let sets_shift = self.geometry.sets.trailing_zeros();
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.lines.iter().position(|l| l.valid && l.tag == tag) {
            self.hits += 1;
            match self.replacement {
                Replacement::Lru => set.lines[way].stamp = self.clock,
                Replacement::TreePlru => Self::plru_touch(&mut set.plru, ways, way),
                Replacement::Fifo => {}
            }
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }

        self.misses += 1;
        // Pick a victim: an invalid way first, else per policy.
        let way =
            set.lines
                .iter()
                .position(|l| !l.valid)
                .unwrap_or_else(|| match self.replacement {
                    Replacement::Lru | Replacement::Fifo => set
                        .lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.stamp)
                        .map(|(i, _)| i)
                        .unwrap_or(0),
                    Replacement::TreePlru => Self::plru_choose(set.plru, ways),
                });
        let evicted = if set.lines[way].valid {
            Some((set.lines[way].tag << sets_shift | set_idx as u64) << line_shift)
        } else {
            None
        };
        set.lines[way] = Line {
            tag,
            valid: true,
            stamp: self.clock,
        };
        if self.replacement == Replacement::TreePlru {
            Self::plru_touch(&mut set.plru, ways, way);
        }
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Non-destructive presence check (does not update replacement state).
    pub fn probe(&self, addr: u64) -> bool {
        let set = &self.sets[self.geometry.set_index(addr)];
        let tag = self.geometry.tag(addr);
        set.lines.iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate the line containing `addr`. Returns whether it was
    /// present.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let set_idx = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.lines.iter().position(|l| l.valid && l.tag == tag) {
            set.lines[way].valid = false;
            self.mark_dirty(set_idx);
            true
        } else {
            false
        }
    }

    /// Invalidate every line.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            for line in &mut set.lines {
                line.valid = false;
            }
        }
        for i in 0..self.sets.len() {
            self.mark_dirty(i);
        }
    }

    /// Number of valid lines in `set`.
    pub fn set_occupancy(&self, set: usize) -> usize {
        self.sets[set].lines.iter().filter(|l| l.valid).count()
    }

    /// Line base addresses currently valid in `set` (unordered).
    pub fn set_contents(&self, set: usize) -> Vec<u64> {
        let sets_shift = self.geometry.sets.trailing_zeros();
        let line_shift = self.geometry.line_shift();
        self.sets[set]
            .lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| (l.tag << sets_shift | set as u64) << line_shift)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(replacement: Replacement) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(4, 2, 64), replacement)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(Replacement::Lru);
        assert!(!c.access(0x40).hit);
        assert!(c.access(0x40).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_offsets_share_a_line() {
        let mut c = tiny(Replacement::Lru);
        c.access(0x40);
        assert!(c.access(0x7f).hit, "same 64 B line");
        assert!(!c.access(0x80).hit, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(Replacement::Lru);
        // Set 1 lines: 0x40, 0x140, 0x240... (stride sets*line = 256).
        c.access(0x040);
        c.access(0x140);
        c.access(0x040); // refresh
        let out = c.access(0x240);
        assert_eq!(out.evicted, Some(0x140));
        assert!(c.probe(0x040));
        assert!(!c.probe(0x140));
    }

    #[test]
    fn fifo_ignores_refresh() {
        let mut c = tiny(Replacement::Fifo);
        c.access(0x040);
        c.access(0x140);
        c.access(0x040); // refresh must not matter for FIFO
        let out = c.access(0x240);
        assert_eq!(out.evicted, Some(0x040));
    }

    #[test]
    fn tree_plru_never_evicts_most_recent() {
        let mut c = SetAssocCache::new(CacheGeometry::new(1, 8, 64), Replacement::TreePlru);
        for i in 0..8u64 {
            c.access(i * 64);
        }
        // Touch line 3, then force an eviction: victim must not be line 3.
        c.access(3 * 64);
        let out = c.access(8 * 64);
        assert!(out.evicted.is_some());
        assert_ne!(out.evicted, Some(3 * 64));
        assert!(c.probe(3 * 64));
    }

    #[test]
    fn occupancy_never_exceeds_ways() {
        let mut c = tiny(Replacement::Lru);
        for i in 0..32u64 {
            c.access(i * 64);
        }
        for s in 0..4 {
            assert!(c.set_occupancy(s) <= 2);
        }
    }

    #[test]
    fn flush_line_and_all() {
        let mut c = tiny(Replacement::Lru);
        c.access(0x40);
        c.access(0x80);
        assert!(c.flush_line(0x40));
        assert!(!c.flush_line(0x40));
        assert!(c.probe(0x80));
        c.flush_all();
        assert!(!c.probe(0x80));
    }

    #[test]
    fn set_contents_round_trip() {
        let mut c = tiny(Replacement::Lru);
        c.access(0x1040);
        c.access(0x2040);
        let mut contents = c.set_contents(1);
        contents.sort_unstable();
        assert_eq!(contents, vec![0x1040, 0x2040]);
    }

    /// Full structural equality, including replacement state — the
    /// dirty-set restore must be indistinguishable from a fresh clone.
    fn assert_same(a: &SetAssocCache, b: &SetAssocCache) {
        assert_eq!(a.clock, b.clock);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.misses, b.misses);
        for (x, y) in a.sets.iter().zip(&b.sets) {
            assert_eq!(x.plru, y.plru);
            for (lx, ly) in x.lines.iter().zip(&y.lines) {
                assert_eq!((lx.tag, lx.valid, lx.stamp), (ly.tag, ly.valid, ly.stamp));
            }
        }
    }

    #[test]
    fn epoch_restore_matches_full_clone() {
        let mut live = tiny(Replacement::Lru);
        for i in 0..16u64 {
            live.access(i * 64);
        }
        live.begin_epoch();
        let snap = live.clone();
        for i in 0..8u64 {
            live.access(i * 192 + 0x40);
            live.flush_line(i * 64);
        }
        live.restore_from(&snap);
        assert_same(&live, &snap);
        // The restored cache is clean: an immediate re-restore copies
        // nothing and still matches.
        live.restore_from(&snap);
        assert_same(&live, &snap);
    }

    #[test]
    fn epoch_restore_from_foreign_snapshot_falls_back_to_full_copy() {
        let mut live = tiny(Replacement::TreePlru);
        live.access(0x40);
        let mut other = tiny(Replacement::TreePlru);
        for i in 0..12u64 {
            other.access(i * 64);
        }
        // Tokens differ (independent caches), so this must deep-copy.
        live.restore_from(&other);
        assert_same(&live, &other);
        // After adopting the token, divergence + restore is exact again.
        live.access(0x3c0);
        live.flush_all();
        live.restore_from(&other);
        assert_same(&live, &other);
    }

    #[test]
    fn flush_all_marks_every_set_dirty() {
        let mut live = tiny(Replacement::Fifo);
        for i in 0..8u64 {
            live.access(i * 64);
        }
        live.begin_epoch();
        let snap = live.clone();
        live.flush_all();
        live.restore_from(&snap);
        assert_same(&live, &snap);
    }

    #[test]
    fn evicted_address_reconstruction() {
        let g = CacheGeometry::new(4, 1, 64);
        let mut c = SetAssocCache::new(g, Replacement::Lru);
        c.access(0xabc0);
        let out = c.access(0xabc0 + 256); // same set, different tag
        assert_eq!(out.evicted, Some(g.line_base(0xabc0)));
    }
}
