//! Property-based tests for the cache models.

use proptest::prelude::*;

use crate::geometry::CacheGeometry;
use crate::hierarchy::{CacheHierarchy, HierarchyConfig};
use crate::setassoc::{Replacement, SetAssocCache};

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    (0u32..6, 1usize..9, 5u32..8).prop_map(|(sets_log, ways, line_log)| {
        CacheGeometry::new(1 << sets_log, ways, 1 << line_log)
    })
}

fn arb_replacement() -> impl Strategy<Value = Replacement> {
    prop_oneof![
        Just(Replacement::Lru),
        Just(Replacement::TreePlru),
        Just(Replacement::Fifo)
    ]
}

proptest! {
    /// An access sequence never leaves more than `ways` valid lines in a
    /// set, and every probe of a just-accessed address hits.
    #[test]
    fn occupancy_bounded_and_recent_access_present(
        geometry in arb_geometry(),
        replacement in arb_replacement(),
        addrs in proptest::collection::vec(0u64..1 << 20, 1..200),
    ) {
        let mut c = SetAssocCache::new(geometry, replacement);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.probe(a), "just-inserted line must be present");
        }
        for s in 0..geometry.sets {
            prop_assert!(c.set_occupancy(s) <= geometry.ways);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    /// Eviction reports are exact: the evicted line really disappears,
    /// and nothing else in the set does.
    #[test]
    fn evictions_are_reported_exactly(
        replacement in arb_replacement(),
        addrs in proptest::collection::vec(0u64..1 << 16, 1..200),
    ) {
        let geometry = CacheGeometry::new(4, 2, 64);
        let mut c = SetAssocCache::new(geometry, replacement);
        use std::collections::HashSet;
        let mut model: HashSet<u64> = HashSet::new();
        for &a in &addrs {
            let line = geometry.line_base(a);
            let out = c.access(a);
            prop_assert_eq!(out.hit, model.contains(&line));
            model.insert(line);
            if let Some(victim) = out.evicted {
                prop_assert!(model.remove(&victim), "evicted line {victim:#x} was not resident");
                prop_assert!(!c.probe(victim));
            }
        }
        // The model and the cache agree on final contents.
        for &line in &model {
            prop_assert!(c.probe(line), "line {line:#x} lost without eviction report");
        }
    }

    /// LRU property: in an over-full set, the most recently touched
    /// `ways` distinct lines are always resident.
    #[test]
    fn lru_keeps_most_recent_ways(
        touches in proptest::collection::vec(0u64..16, 1..100),
    ) {
        let geometry = CacheGeometry::new(1, 4, 64);
        let mut c = SetAssocCache::new(geometry, Replacement::Lru);
        let mut recency: Vec<u64> = Vec::new();
        for &t in &touches {
            let addr = t * 64;
            c.access(addr);
            recency.retain(|&x| x != addr);
            recency.push(addr);
        }
        for &addr in recency.iter().rev().take(4) {
            prop_assert!(c.probe(addr), "recently used {addr:#x} evicted");
        }
    }

    /// compose() is a right inverse of (set_index, tag).
    #[test]
    fn compose_inverts_indexing(geometry in arb_geometry(), addr in any::<u64>()) {
        let set = geometry.set_index(addr);
        let tag = geometry.tag(addr);
        let rebuilt = geometry.compose(tag, set);
        prop_assert_eq!(rebuilt, geometry.line_base(addr));
        prop_assert_eq!(geometry.set_index(rebuilt), set);
        prop_assert_eq!(geometry.tag(rebuilt), tag);
    }

    /// Flushing a line is exact: only that line disappears.
    #[test]
    fn flush_is_precise(addrs in proptest::collection::hash_set(0u64..1 << 14, 2..20)) {
        let geometry = CacheGeometry::new(64, 8, 64);
        let mut c = SetAssocCache::new(geometry, Replacement::Lru);
        let lines: Vec<u64> = addrs.iter().map(|&a| geometry.line_base(a)).collect();
        for &a in &addrs {
            c.access(a);
        }
        let victim = *lines.first().unwrap();
        c.flush_line(victim);
        prop_assert!(!c.probe(victim));
        for &l in &lines[1..] {
            if l != victim {
                prop_assert!(c.probe(l), "flush of {victim:#x} clobbered {l:#x}");
            }
        }
    }

    /// Inclusivity invariant: after any access sequence, every line
    /// resident in L1I or L1D is also resident in L2.
    #[test]
    fn l2_is_inclusive_of_both_l1s(
        accesses in proptest::collection::vec((any::<bool>(), 0u64..1 << 18), 1..300),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let line = |a: u64| a & !63;
        let mut touched = std::collections::HashSet::new();
        for &(inst, addr) in &accesses {
            if inst {
                h.access_inst(addr);
            } else {
                h.access_data(addr);
            }
            touched.insert(line(addr));
        }
        for &l in &touched {
            if h.probe_l1i(l) || h.probe_l1d(l) {
                prop_assert!(h.probe_l2(l), "line {l:#x} in L1 but not L2");
            }
        }
    }

    /// Latency ordering is stable under any interleaving: an L1-resident
    /// line is always at least as fast as an L2-resident one, which beats
    /// memory.
    #[test]
    fn latency_ordering_invariant(addr in 0u64..1 << 16) {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let (_, mem) = h.access_data(addr);
        let (_, l1) = h.access_data(addr);
        prop_assert!(l1 < mem);
        // Evict from L1 only (not L2): next access is an L2 hit.
        let g = h.config().l1d;
        let set = g.set_index(addr);
        for i in 1..=g.ways as u64 {
            h.access_data(g.compose(g.tag(addr) + i * 1024, set));
        }
        if !h.probe_l1d(addr) && h.probe_l2(addr) {
            let (_, l2) = h.access_data(addr);
            prop_assert!(l1 < l2 && l2 < mem);
        }
    }
}
