//! Performance counters.
//!
//! The ID observation channel (paper §5.1) samples µop-cache events such
//! as `de_dis_uops_from_decoder.opcache_dispatched` (Zen 2),
//! `op_cache_hit_miss.op_cache_hit` (Zen 3/4) and `idq.dsb_cycles`
//! (Intel). We model a small registry of named monotone counters that the
//! pipeline increments and experiments sample before/after a step.

use std::fmt;

/// A countable microarchitectural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// µop-cache hit (`op_cache_hit_miss.op_cache_hit`).
    OpCacheHit,
    /// µop-cache miss (`op_cache_hit_miss.op_cache_miss`).
    OpCacheMiss,
    /// µops dispatched from the legacy decoder
    /// (`de_dis_uops_from_decoder`).
    UopsFromDecoder,
    /// µops dispatched from the µop cache
    /// (`de_dis_uops_from_decoder.opcache_dispatched` / `idq.dsb_uops`).
    UopsFromOpCache,
    /// Instruction-cache miss.
    IcacheMiss,
    /// Data-cache (L1D) miss.
    DcacheMiss,
    /// Unified L2 miss.
    L2Miss,
    /// Any branch misprediction detected (frontend or backend).
    BranchMispredict,
    /// Resteer issued by the decoder (decoder-detectable misprediction —
    /// the Phantom case).
    ResteerFrontend,
    /// Resteer issued at execute (the conventional Spectre case).
    ResteerBackend,
    /// Instructions retired.
    InstRetired,
    /// Cycles elapsed.
    Cycles,
    /// Loads dispatched to the memory subsystem (including squashed ones —
    /// "there is no mechanism to abort a dispatched memory request").
    LoadsDispatched,
    /// Wrong-path µops that dispatched to execution ports before a
    /// squash — the quantity behind port-contention observation (§5.1).
    WrongPathUops,
}

impl Event {
    /// All events, for iteration and display.
    pub const ALL: [Event; 14] = [
        Event::OpCacheHit,
        Event::OpCacheMiss,
        Event::UopsFromDecoder,
        Event::UopsFromOpCache,
        Event::IcacheMiss,
        Event::DcacheMiss,
        Event::L2Miss,
        Event::BranchMispredict,
        Event::ResteerFrontend,
        Event::ResteerBackend,
        Event::InstRetired,
        Event::Cycles,
        Event::LoadsDispatched,
        Event::WrongPathUops,
    ];

    fn index(self) -> usize {
        match self {
            Event::OpCacheHit => 0,
            Event::OpCacheMiss => 1,
            Event::UopsFromDecoder => 2,
            Event::UopsFromOpCache => 3,
            Event::IcacheMiss => 4,
            Event::DcacheMiss => 5,
            Event::L2Miss => 6,
            Event::BranchMispredict => 7,
            Event::ResteerFrontend => 8,
            Event::ResteerBackend => 9,
            Event::InstRetired => 10,
            Event::Cycles => 11,
            Event::LoadsDispatched => 12,
            Event::WrongPathUops => 13,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Event::OpCacheHit => "op_cache_hit_miss.op_cache_hit",
            Event::OpCacheMiss => "op_cache_hit_miss.op_cache_miss",
            Event::UopsFromDecoder => "de_dis_uops_from_decoder",
            Event::UopsFromOpCache => "de_dis_uops_from_decoder.opcache_dispatched",
            Event::IcacheMiss => "icache_miss",
            Event::DcacheMiss => "dcache_miss",
            Event::L2Miss => "l2_miss",
            Event::BranchMispredict => "branch_mispredict",
            Event::ResteerFrontend => "resteer.frontend",
            Event::ResteerBackend => "resteer.backend",
            Event::InstRetired => "inst_retired",
            Event::Cycles => "cycles",
            Event::LoadsDispatched => "loads_dispatched",
            Event::WrongPathUops => "wrong_path_uops",
        };
        f.write_str(s)
    }
}

/// A bank of monotone event counters with before/after sampling.
///
/// # Examples
///
/// ```
/// use phantom_cache::{Event, PerfCounters};
/// let mut pmu = PerfCounters::new();
/// let before = pmu.read(Event::OpCacheMiss);
/// pmu.add(Event::OpCacheMiss, 3);
/// assert_eq!(pmu.read(Event::OpCacheMiss) - before, 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfCounters {
    counts: [u64; 14],
}

impl PerfCounters {
    /// All counters zero.
    pub fn new() -> PerfCounters {
        PerfCounters::default()
    }

    /// Current value of `event`.
    pub fn read(&self, event: Event) -> u64 {
        self.counts[event.index()]
    }

    /// Add `n` occurrences of `event`.
    pub fn add(&mut self, event: Event, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Add one occurrence of `event`.
    pub fn bump(&mut self, event: Event) {
        self.add(event, 1);
    }

    /// Snapshot all counters (for delta measurement around a step).
    pub fn snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            counts: self.counts,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        self.counts = [0; 14];
    }
}

impl fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in Event::ALL {
            writeln!(f, "{e}: {}", self.read(e))?;
        }
        Ok(())
    }
}

/// A point-in-time copy of the counters; subtract from a later state to
/// get per-step deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfSnapshot {
    counts: [u64; 14],
}

impl PerfSnapshot {
    /// The delta of `event` between this snapshot and the current
    /// counters.
    pub fn delta(&self, now: &PerfCounters, event: Event) -> u64 {
        now.read(event) - self.counts[event.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_zero_and_accumulate() {
        let mut pmu = PerfCounters::new();
        for e in Event::ALL {
            assert_eq!(pmu.read(e), 0);
        }
        pmu.bump(Event::IcacheMiss);
        pmu.add(Event::IcacheMiss, 2);
        assert_eq!(pmu.read(Event::IcacheMiss), 3);
        assert_eq!(pmu.read(Event::DcacheMiss), 0);
    }

    #[test]
    fn snapshot_deltas() {
        let mut pmu = PerfCounters::new();
        pmu.add(Event::OpCacheHit, 10);
        let snap = pmu.snapshot();
        pmu.add(Event::OpCacheHit, 5);
        pmu.add(Event::OpCacheMiss, 2);
        assert_eq!(snap.delta(&pmu, Event::OpCacheHit), 5);
        assert_eq!(snap.delta(&pmu, Event::OpCacheMiss), 2);
    }

    #[test]
    fn reset_zeroes() {
        let mut pmu = PerfCounters::new();
        pmu.add(Event::Cycles, 100);
        pmu.reset();
        assert_eq!(pmu.read(Event::Cycles), 0);
    }

    #[test]
    fn event_names_match_vendor_counters() {
        assert_eq!(
            Event::UopsFromOpCache.to_string(),
            "de_dis_uops_from_decoder.opcache_dispatched"
        );
        assert_eq!(
            Event::OpCacheHit.to_string(),
            "op_cache_hit_miss.op_cache_hit"
        );
    }
}
