//! Branch classification shared by the decoder and the branch predictor.

use std::fmt;

/// The control-flow class of an instruction, as seen by the decoder and as
/// *recorded in the BTB by training*.
///
/// Phantom's central observation is that the BTB stores a branch kind that
/// the frontend trusts **before decode**. The decoder later compares the
/// kind it actually decoded against the predicted kind; a mismatch is a
/// decoder-detectable misprediction and triggers a frontend resteer.
///
/// # Examples
///
/// ```
/// use phantom_isa::{BranchKind, Inst, Reg};
/// assert_eq!(Inst::Nop.kind(), BranchKind::NotBranch);
/// assert_eq!(Inst::JmpInd { src: Reg::R0 }.kind(), BranchKind::Indirect);
/// assert!(BranchKind::Indirect.is_branch());
/// assert!(!BranchKind::NotBranch.is_branch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// Not a control-flow edge (nop sleds, ALU, loads, stores, fences…).
    NotBranch,
    /// Direct unconditional jump (`jmp rel`). The BTB serves the target
    /// PC-relative for this kind (§5.2 of the paper).
    Direct,
    /// Indirect unconditional jump (`jmp*`).
    Indirect,
    /// Conditional branch (`jcc`), execute-dependent.
    Cond,
    /// Direct call; pushes a return address and feeds the RSB.
    Call,
    /// Indirect call.
    CallInd,
    /// Return; predicted via the RSB, execute-dependent.
    Ret,
}

impl BranchKind {
    /// All kinds, useful for exhaustive experiment sweeps.
    pub const ALL: [BranchKind; 7] = [
        BranchKind::NotBranch,
        BranchKind::Direct,
        BranchKind::Indirect,
        BranchKind::Cond,
        BranchKind::Call,
        BranchKind::CallInd,
        BranchKind::Ret,
    ];

    /// Whether this kind is a control-flow edge at all.
    pub fn is_branch(self) -> bool {
        self != BranchKind::NotBranch
    }

    /// Whether the *architectural* next PC for this kind can only be
    /// finalized at the execute stage (conditional outcome, indirect
    /// target, or return address), as opposed to at decode.
    ///
    /// Decode can finalize `jmp rel` and `call rel`: the displacement is in
    /// the instruction bytes. It cannot finalize `jcc`/`jmp*`/`ret`, which
    /// is exactly the window conventional Spectre exploits.
    pub fn is_execute_dependent(self) -> bool {
        matches!(
            self,
            BranchKind::Cond | BranchKind::Indirect | BranchKind::CallInd | BranchKind::Ret
        )
    }

    /// Whether the predicted target stored in the BTB is applied
    /// PC-relative (direct branches) rather than as an absolute address.
    pub fn target_is_relative(self) -> bool {
        matches!(self, BranchKind::Direct | BranchKind::Call)
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::NotBranch => "non branch",
            BranchKind::Direct => "jmp",
            BranchKind::Indirect => "jmp*",
            BranchKind::Cond => "jcc",
            BranchKind::Call => "call",
            BranchKind::CallInd => "call*",
            BranchKind::Ret => "ret",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_dependence_matches_paper() {
        // §2.2: "unless a branch source that is execute-dependent was
        // decoded (e.g., conditional, indirect, or return branch)".
        assert!(BranchKind::Cond.is_execute_dependent());
        assert!(BranchKind::Indirect.is_execute_dependent());
        assert!(BranchKind::CallInd.is_execute_dependent());
        assert!(BranchKind::Ret.is_execute_dependent());
        assert!(!BranchKind::Direct.is_execute_dependent());
        assert!(!BranchKind::Call.is_execute_dependent());
        assert!(!BranchKind::NotBranch.is_execute_dependent());
    }

    #[test]
    fn only_direct_kinds_are_relative() {
        for k in BranchKind::ALL {
            assert_eq!(
                k.target_is_relative(),
                matches!(k, BranchKind::Direct | BranchKind::Call),
                "{k}"
            );
        }
    }

    #[test]
    fn display_matches_paper_terms() {
        assert_eq!(BranchKind::Indirect.to_string(), "jmp*");
        assert_eq!(BranchKind::NotBranch.to_string(), "non branch");
        assert_eq!(BranchKind::Cond.to_string(), "jcc");
    }
}
