//! The instruction enumeration.

use std::fmt;

use crate::kind::BranchKind;
use crate::reg::Reg;

/// Condition code for [`Inst::Jcc`].
///
/// Conditions are evaluated against the flags produced by [`Inst::Cmp`]
/// (zero, sign, carry — carry models the unsigned below relation).
///
/// # Examples
///
/// ```
/// use phantom_isa::Cond;
/// assert!(Cond::Below.eval(false, false, true));
/// assert!(!Cond::Below.eval(false, false, false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// ZF set (`je`).
    Eq = 0,
    /// ZF clear (`jne`).
    Ne = 1,
    /// CF set (`jb`, unsigned less-than).
    Below = 2,
    /// CF clear (`jae`).
    AboveEq = 3,
    /// SF set (`js`).
    Sign = 4,
    /// SF clear (`jns`).
    NotSign = 5,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 6] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Below,
        Cond::AboveEq,
        Cond::Sign,
        Cond::NotSign,
    ];

    /// Decode a condition from its encoding byte.
    pub fn from_code(code: u8) -> Option<Cond> {
        Cond::ALL.get(usize::from(code)).copied()
    }

    /// The encoding byte for this condition.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Evaluate the condition against flag values `(zf, sf, cf)`.
    pub fn eval(self, zf: bool, sf: bool, cf: bool) -> bool {
        match self {
            Cond::Eq => zf,
            Cond::Ne => !zf,
            Cond::Below => cf,
            Cond::AboveEq => !cf,
            Cond::Sign => sf,
            Cond::NotSign => !sf,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Below => "b",
            Cond::AboveEq => "ae",
            Cond::Sign => "s",
            Cond::NotSign => "ns",
        };
        f.write_str(s)
    }
}

/// ALU operation for [`Inst::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// `dst += src`.
    Add = 0,
    /// `dst -= src`.
    Sub = 1,
    /// `dst &= src`.
    And = 2,
    /// `dst |= src`.
    Or = 3,
    /// `dst ^= src`.
    Xor = 4,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 5] = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor];

    /// Decode from the encoding byte.
    pub fn from_code(code: u8) -> Option<AluOp> {
        AluOp::ALL.get(usize::from(code)).copied()
    }

    /// The encoding byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Apply the operation.
    pub fn apply(self, dst: u64, src: u64) -> u64 {
        match self {
            AluOp::Add => dst.wrapping_add(src),
            AluOp::Sub => dst.wrapping_sub(src),
            AluOp::And => dst & src,
            AluOp::Or => dst | src,
            AluOp::Xor => dst ^ src,
        }
    }
}

/// One decoded instruction.
///
/// The encoding is variable length (1–15 bytes, like x86). Displacements
/// for direct control flow are relative to the **end** of the instruction,
/// matching x86 `rel32` semantics.
///
/// # Examples
///
/// ```
/// use phantom_isa::{BranchKind, Inst, Reg};
/// let i = Inst::Jmp { disp: -5 };
/// assert_eq!(i.kind(), BranchKind::Direct);
/// assert_eq!(i.len(), 5);
/// // A jmp at 0x100 with disp -5 targets itself.
/// assert_eq!(i.direct_target(0x100), Some(0x100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Single-byte no-op.
    Nop,
    /// Multi-byte no-op occupying `len` bytes (3–15), like
    /// `nop DWORD PTR [rax+rax*1+0x0]` in the paper's Listing 1.
    NopN {
        /// Total encoded length in bytes.
        len: u8,
    },
    /// Direct unconditional jump, `rel32` from instruction end.
    Jmp {
        /// Displacement from the end of this instruction.
        disp: i32,
    },
    /// Indirect jump through a register.
    JmpInd {
        /// Register holding the absolute target.
        src: Reg,
    },
    /// Conditional direct branch.
    Jcc {
        /// Branch condition.
        cond: Cond,
        /// Displacement from the end of this instruction.
        disp: i32,
    },
    /// Direct call (pushes return address).
    Call {
        /// Displacement from the end of this instruction.
        disp: i32,
    },
    /// Indirect call through a register.
    CallInd {
        /// Register holding the absolute target.
        src: Reg,
    },
    /// Return (pops return address).
    Ret,
    /// Load `dst = [base + disp]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i32,
    },
    /// Store `[base + disp] = src`.
    Store {
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i32,
        /// Source register.
        src: Reg,
    },
    /// Load a 64-bit immediate.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Register-register move.
    MovReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst >>= amount` (logical).
    Shr {
        /// Destination register.
        dst: Reg,
        /// Shift amount (0–63).
        amount: u8,
    },
    /// `dst <<= amount`.
    Shl {
        /// Destination register.
        dst: Reg,
        /// Shift amount (0–63).
        amount: u8,
    },
    /// `dst &= imm` (32-bit immediate, zero-extended).
    AndImm {
        /// Destination register.
        dst: Reg,
        /// Immediate mask.
        imm: u32,
    },
    /// Compare two registers and set flags (like `cmp a, b`).
    Cmp {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Load fence: stalls until earlier loads retire; the recommended
    /// Spectre speculation barrier (§2.4).
    Lfence,
    /// Full memory fence.
    Mfence,
    /// Flush the cache line containing `[addr]` from the data caches
    /// (`clflush`).
    Clflush {
        /// Register holding the address to flush.
        addr: Reg,
    },
    /// Enter the kernel (syscall number in `R0`, args in `R1`, `R2`, …).
    Syscall,
    /// Return from kernel to user mode.
    Sysret,
    /// Stop the machine (used to terminate simulated programs).
    Halt,
    /// An undecodable byte; consumes exactly one byte, like a `#UD`-ing
    /// x86 sequence. Phantom targets pointing into data decode to these.
    Invalid {
        /// The offending byte.
        byte: u8,
    },
}

impl Inst {
    /// The control-flow classification the *decoder* derives for this
    /// instruction — what gets compared against the BTB's predicted kind.
    pub fn kind(&self) -> BranchKind {
        match self {
            Inst::Jmp { .. } => BranchKind::Direct,
            Inst::JmpInd { .. } => BranchKind::Indirect,
            Inst::Jcc { .. } => BranchKind::Cond,
            Inst::Call { .. } => BranchKind::Call,
            Inst::CallInd { .. } => BranchKind::CallInd,
            Inst::Ret => BranchKind::Ret,
            _ => BranchKind::NotBranch,
        }
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        crate::encode::encoded_len(self)
    }

    /// `true` if the encoding is a single byte. Provided for
    /// `clippy::len_without_is_empty` symmetry; instructions are never
    /// zero-length.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// For direct control flow (`jmp`, `jcc`, `call`), the absolute target
    /// given the instruction's start address. `None` for other kinds.
    pub fn direct_target(&self, pc: u64) -> Option<u64> {
        let (disp, len) = match self {
            Inst::Jmp { disp } => (*disp, self.len()),
            Inst::Jcc { disp, .. } => (*disp, self.len()),
            Inst::Call { disp } => (*disp, self.len()),
            _ => return None,
        };
        Some(pc.wrapping_add(len as u64).wrapping_add(disp as i64 as u64))
    }

    /// Whether this instruction performs a data-memory access.
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::Ret
                | Inst::Call { .. }
                | Inst::CallInd { .. }
        )
    }

    /// Whether this is a speculation barrier.
    pub fn is_fence(&self) -> bool {
        matches!(self, Inst::Lfence | Inst::Mfence)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::NopN { len } => write!(f, "nop{len}"),
            Inst::Jmp { disp } => write!(f, "jmp {disp:+}"),
            Inst::JmpInd { src } => write!(f, "jmp *{src}"),
            Inst::Jcc { cond, disp } => write!(f, "j{cond} {disp:+}"),
            Inst::Call { disp } => write!(f, "call {disp:+}"),
            Inst::CallInd { src } => write!(f, "call *{src}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Load { dst, base, disp } => write!(f, "mov {dst}, [{base}{disp:+}]"),
            Inst::Store { base, disp, src } => write!(f, "mov [{base}{disp:+}], {src}"),
            Inst::MovImm { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Inst::MovReg { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Alu { op, dst, src } => write!(f, "{op:?} {dst}, {src}"),
            Inst::Shr { dst, amount } => write!(f, "shr {dst}, {amount}"),
            Inst::Shl { dst, amount } => write!(f, "shl {dst}, {amount}"),
            Inst::AndImm { dst, imm } => write!(f, "and {dst}, {imm:#x}"),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::Lfence => write!(f, "lfence"),
            Inst::Mfence => write!(f, "mfence"),
            Inst::Clflush { addr } => write!(f, "clflush [{addr}]"),
            Inst::Syscall => write!(f, "syscall"),
            Inst::Sysret => write!(f, "sysret"),
            Inst::Halt => write!(f, "hlt"),
            Inst::Invalid { byte } => write!(f, "(bad {byte:#04x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_branch_taxonomy() {
        assert_eq!(Inst::Nop.kind(), BranchKind::NotBranch);
        assert_eq!(Inst::NopN { len: 4 }.kind(), BranchKind::NotBranch);
        assert_eq!(Inst::Jmp { disp: 0 }.kind(), BranchKind::Direct);
        assert_eq!(Inst::JmpInd { src: Reg::R1 }.kind(), BranchKind::Indirect);
        assert_eq!(
            Inst::Jcc {
                cond: Cond::Eq,
                disp: 8
            }
            .kind(),
            BranchKind::Cond
        );
        assert_eq!(Inst::Call { disp: 0 }.kind(), BranchKind::Call);
        assert_eq!(Inst::Ret.kind(), BranchKind::Ret);
        assert_eq!(
            Inst::Load {
                dst: Reg::R0,
                base: Reg::R1,
                disp: 0
            }
            .kind(),
            BranchKind::NotBranch
        );
    }

    #[test]
    fn direct_target_is_relative_to_instruction_end() {
        // jmp at 0x1000, 5 bytes, disp +0x10 -> 0x1015.
        let j = Inst::Jmp { disp: 0x10 };
        assert_eq!(j.direct_target(0x1000), Some(0x1015));
        // Backward displacement.
        let b = Inst::Jmp { disp: -0x20 };
        assert_eq!(b.direct_target(0x1000), Some(0x1000 + 5 - 0x20));
        // Indirect has no static target.
        assert_eq!(Inst::JmpInd { src: Reg::R0 }.direct_target(0x1000), None);
    }

    #[test]
    fn cond_eval_truth_table() {
        assert!(Cond::Eq.eval(true, false, false));
        assert!(!Cond::Eq.eval(false, false, false));
        assert!(Cond::Ne.eval(false, false, false));
        assert!(Cond::Below.eval(false, false, true));
        assert!(Cond::AboveEq.eval(false, false, false));
        assert!(Cond::Sign.eval(false, true, false));
        assert!(Cond::NotSign.eval(false, false, false));
    }

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn memory_touching_classification() {
        assert!(Inst::Load {
            dst: Reg::R0,
            base: Reg::R1,
            disp: 0
        }
        .touches_memory());
        assert!(Inst::Ret.touches_memory());
        assert!(!Inst::Nop.touches_memory());
        assert!(!Inst::MovImm {
            dst: Reg::R0,
            imm: 1
        }
        .touches_memory());
    }
}
