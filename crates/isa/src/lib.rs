//! A compact, x86-like instruction set for the Phantom reproduction.
//!
//! Phantom attacks hinge on *decoder-detectable mispredictions*: the branch
//! predictor claims an instruction is a branch of some type, and only the
//! decode stage — by actually parsing the raw bytes — can discover the
//! mismatch. For that story to be faithful, the simulated CPU must fetch
//! *bytes* and decode them. This crate provides:
//!
//! * [`Inst`] — the instruction enumeration (branches, loads, stores, ALU,
//!   fences, nop sleds, …) with a [`BranchKind`] classification,
//! * [`encode`](encode::encode_into) / [`decode`](decode::decode) — a
//!   byte-true variable-length encoding, total on arbitrary byte input
//!   (unknown bytes decode to [`Inst::Invalid`], as on real hardware where
//!   any byte sequence decodes to *something* or faults),
//! * [`asm::Assembler`] — a tiny two-pass assembler with labels
//!   for building the code blobs used by experiments and the simulated
//!   kernel.
//!
//! # Examples
//!
//! ```
//! use phantom_isa::{asm::Assembler, Inst, Reg};
//!
//! let mut a = Assembler::new(0x1000);
//! a.label("top");
//! a.push(Inst::MovImm { dst: Reg::R1, imm: 42 });
//! a.jmp("top");
//! let blob = a.finish().expect("labels resolve");
//! let (inst, len) = phantom_isa::decode::decode(&blob.bytes).expect("non-empty");
//! assert_eq!(inst, Inst::MovImm { dst: Reg::R1, imm: 42 });
//! assert_eq!(len, 10);
//! ```

pub mod asm;
pub mod decode;
pub mod encode;
pub mod inst;
pub mod kind;
pub mod reg;

pub use asm::Assembler;
pub use inst::{Cond, Inst};
pub use kind::BranchKind;
pub use reg::Reg;

#[cfg(test)]
mod proptests;
