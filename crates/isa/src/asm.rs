//! A tiny two-pass assembler with labels.
//!
//! Experiments and the simulated kernel need precisely laid-out code:
//! branches at chosen page offsets, jmp-series separated by 4096 bytes,
//! gadgets at fixed image offsets. The assembler supports labels,
//! alignment/padding directives and fix-ups of direct displacements.

use std::collections::HashMap;

use crate::encode::{encode_into, EncodeError};
use crate::inst::Inst;

/// An assembled code blob: raw bytes plus resolved label addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// The virtual address the blob is assembled for.
    pub base: u64,
    /// The encoded bytes.
    pub bytes: Vec<u8>,
    /// Label name → absolute virtual address.
    pub labels: HashMap<String, u64>,
}

impl Blob {
    /// Absolute address of `label`.
    ///
    /// # Panics
    ///
    /// Panics if the label was never defined; hand-written experiment
    /// code treats a missing label as a programming error. Generated
    /// programs (the discover fuzzer) must use [`Blob::try_addr`]
    /// instead — a mutated program that lost a label is a rejected
    /// candidate, not a crash.
    pub fn addr(&self, label: &str) -> u64 {
        self.try_addr(label).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Absolute address of `label`, as a structured error when the
    /// label was never defined.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] for an unknown label.
    pub fn try_addr(&self, label: &str) -> Result<u64, AsmError> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))
    }

    /// End address (base + length).
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

/// Error from [`Assembler::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A displacement did not fit in 32 bits.
    DispOverflow { from: u64, to: u64 },
    /// Underlying encoding failure.
    Encode(EncodeError),
    /// `org` directive tried to move backwards.
    OrgBackwards { at: u64, requested: u64 },
    /// `org` directive asked for more forward padding than
    /// [`Assembler::MAX_ORG_PAD`] allows. Without the cap a generated
    /// `org` near the top of the address space aborts the process
    /// trying to allocate the pad bytes.
    OrgTooFar { at: u64, requested: u64 },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmError::DispOverflow { from, to } => {
                write!(f, "displacement from {from:#x} to {to:#x} overflows i32")
            }
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
            AsmError::OrgBackwards { at, requested } => {
                write!(
                    f,
                    "org to {requested:#x} is before current position {at:#x}"
                )
            }
            AsmError::OrgTooFar { at, requested } => {
                write!(
                    f,
                    "org to {requested:#x} pads {} bytes past {at:#x} (max {})",
                    requested - at,
                    Assembler::MAX_ORG_PAD
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

#[derive(Debug, Clone)]
enum Item {
    Inst(Inst),
    /// A direct branch whose displacement is patched to reach a label.
    /// `make` receives the resolved displacement.
    Fixup {
        label: String,
        make: fn(i32) -> Inst,
        len: usize,
    },
    Label(String),
    /// Pad with single-byte nops up to the given absolute address.
    Org(u64),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

/// Two-pass assembler. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Assembler {
    base: u64,
    items: Vec<Item>,
}

impl Assembler {
    /// Maximum forward padding one `org` directive may insert (64 MiB —
    /// an order of magnitude above any experiment image, far below what
    /// would exhaust memory). A generated `org` to the top of the
    /// address space must come back as [`AsmError::OrgTooFar`], not as
    /// an allocation abort.
    pub const MAX_ORG_PAD: u64 = 64 << 20;

    /// Start assembling at virtual address `base`.
    pub fn new(base: u64) -> Assembler {
        Assembler {
            base,
            items: Vec::new(),
        }
    }

    /// Append an instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.items.push(Item::Inst(inst));
        self
    }

    /// Append several instructions.
    pub fn extend<I: IntoIterator<Item = Inst>>(&mut self, insts: I) -> &mut Self {
        for i in insts {
            self.push(i);
        }
        self
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.items.push(Item::Label(name.into()));
        self
    }

    /// `jmp` to a label (displacement patched in pass two).
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Fixup {
            label: label.into(),
            make: |disp| Inst::Jmp { disp },
            len: 5,
        });
        self
    }

    /// `call` to a label.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Fixup {
            label: label.into(),
            make: |disp| Inst::Call { disp },
            len: 5,
        });
        self
    }

    /// `jcc` (condition `Below`) to a label. For other conditions use
    /// [`Assembler::jcc_cond`].
    pub fn jb(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Fixup {
            label: label.into(),
            make: |disp| Inst::Jcc {
                cond: crate::inst::Cond::Below,
                disp,
            },
            len: 6,
        });
        self
    }

    /// `jcc` with an arbitrary condition to a label.
    pub fn jcc_cond(&mut self, cond: crate::inst::Cond, label: impl Into<String>) -> &mut Self {
        // Monomorphic fixup functions keep `Item` a plain enum; dispatch on
        // the condition at patch time via a table.
        fn make_eq(d: i32) -> Inst {
            Inst::Jcc {
                cond: crate::inst::Cond::Eq,
                disp: d,
            }
        }
        fn make_ne(d: i32) -> Inst {
            Inst::Jcc {
                cond: crate::inst::Cond::Ne,
                disp: d,
            }
        }
        fn make_b(d: i32) -> Inst {
            Inst::Jcc {
                cond: crate::inst::Cond::Below,
                disp: d,
            }
        }
        fn make_ae(d: i32) -> Inst {
            Inst::Jcc {
                cond: crate::inst::Cond::AboveEq,
                disp: d,
            }
        }
        fn make_s(d: i32) -> Inst {
            Inst::Jcc {
                cond: crate::inst::Cond::Sign,
                disp: d,
            }
        }
        fn make_ns(d: i32) -> Inst {
            Inst::Jcc {
                cond: crate::inst::Cond::NotSign,
                disp: d,
            }
        }
        let make = match cond {
            crate::inst::Cond::Eq => make_eq as fn(i32) -> Inst,
            crate::inst::Cond::Ne => make_ne,
            crate::inst::Cond::Below => make_b,
            crate::inst::Cond::AboveEq => make_ae,
            crate::inst::Cond::Sign => make_s,
            crate::inst::Cond::NotSign => make_ns,
        };
        self.items.push(Item::Fixup {
            label: label.into(),
            make,
            len: 6,
        });
        self
    }

    /// Pad with `nop` bytes until the absolute address `addr`.
    pub fn org(&mut self, addr: u64) -> &mut Self {
        self.items.push(Item::Org(addr));
        self
    }

    /// Append raw bytes (e.g. data a phantom target will "decode").
    pub fn bytes(&mut self, data: impl Into<Vec<u8>>) -> &mut Self {
        self.items.push(Item::Bytes(data.into()));
        self
    }

    /// Append `n` single-byte nops (a nop sled).
    pub fn nops(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.push(Inst::Nop);
        }
        self
    }

    /// Resolve labels and produce the final [`Blob`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on undefined/duplicate labels, displacement
    /// overflow, backwards `org`, or malformed instructions.
    pub fn finish(&self) -> Result<Blob, AsmError> {
        // Pass one: lay out addresses.
        let mut labels: HashMap<String, u64> = HashMap::new();
        let mut pc = self.base;
        for item in &self.items {
            match item {
                Item::Inst(inst) => pc += inst.len() as u64,
                Item::Fixup { len, .. } => pc += *len as u64,
                Item::Label(name) => {
                    if labels.insert(name.clone(), pc).is_some() {
                        return Err(AsmError::DuplicateLabel(name.clone()));
                    }
                }
                Item::Org(addr) => {
                    if *addr < pc {
                        return Err(AsmError::OrgBackwards {
                            at: pc,
                            requested: *addr,
                        });
                    }
                    if *addr - pc > Assembler::MAX_ORG_PAD {
                        return Err(AsmError::OrgTooFar {
                            at: pc,
                            requested: *addr,
                        });
                    }
                    pc = *addr;
                }
                Item::Bytes(data) => pc += data.len() as u64,
            }
        }

        // Pass two: emit bytes with displacements patched.
        let mut bytes = Vec::new();
        let mut pc = self.base;
        for item in &self.items {
            match item {
                Item::Inst(inst) => {
                    encode_into(inst, &mut bytes)?;
                    pc += inst.len() as u64;
                }
                Item::Fixup { label, make, len } => {
                    let target = *labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    let next = pc + *len as u64;
                    let disp = target.wrapping_sub(next) as i64;
                    let disp = i32::try_from(disp).map_err(|_| AsmError::DispOverflow {
                        from: pc,
                        to: target,
                    })?;
                    let inst = make(disp);
                    debug_assert_eq!(inst.len(), *len);
                    encode_into(&inst, &mut bytes)?;
                    pc = next;
                }
                Item::Label(_) => {}
                Item::Org(addr) => {
                    // Pass one already rejected backwards and oversized
                    // orgs, and the pc evolves identically here; the
                    // checked form keeps a future divergence between the
                    // passes a structured error instead of a wrapping
                    // subtraction feeding a gigantic `resize`.
                    let pad = addr.checked_sub(pc).ok_or(AsmError::OrgBackwards {
                        at: pc,
                        requested: *addr,
                    })?;
                    if pad > Assembler::MAX_ORG_PAD {
                        return Err(AsmError::OrgTooFar {
                            at: pc,
                            requested: *addr,
                        });
                    }
                    bytes.resize(bytes.len() + pad as usize, 0x90);
                    pc = *addr;
                }
                Item::Bytes(data) => {
                    bytes.extend_from_slice(data);
                    pc += data.len() as u64;
                }
            }
        }

        Ok(Blob {
            base: self.base,
            bytes,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_all;
    use crate::reg::Reg;

    #[test]
    fn forward_and_backward_jumps_resolve() {
        let mut a = Assembler::new(0x4000);
        a.label("start");
        a.jmp("end");
        a.nops(3);
        a.label("end");
        a.jmp("start");
        let blob = a.finish().unwrap();
        assert_eq!(blob.addr("start"), 0x4000);
        assert_eq!(blob.addr("end"), 0x4000 + 5 + 3);
        let insts = decode_all(&blob.bytes);
        // First jmp: at 0x4000, ends at 0x4005, target 0x4008 => disp 3.
        assert_eq!(insts[0].1, Inst::Jmp { disp: 3 });
        // Last jmp: at 0x4008, ends 0x400d, target 0x4000 => disp -13.
        assert_eq!(insts[4].1, Inst::Jmp { disp: -13 });
    }

    #[test]
    fn org_pads_with_nops() {
        let mut a = Assembler::new(0x1000);
        a.push(Inst::Ret);
        a.org(0x1010);
        a.label("aligned");
        a.push(Inst::Halt);
        let blob = a.finish().unwrap();
        assert_eq!(blob.addr("aligned"), 0x1010);
        assert_eq!(blob.bytes.len(), 0x11);
        assert!(blob.bytes[1..0x10].iter().all(|&b| b == 0x90));
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new(0);
        a.jmp("nowhere");
        assert_eq!(a.finish(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new(0);
        a.label("x").label("x");
        assert_eq!(a.finish(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn org_backwards_errors() {
        let mut a = Assembler::new(0x100);
        a.nops(8);
        a.org(0x100);
        assert!(matches!(a.finish(), Err(AsmError::OrgBackwards { .. })));
    }

    #[test]
    fn blob_try_addr_returns_structured_error() {
        // Pre-fix, the only label accessor panicked on a missing label;
        // generated programs need the fallible path.
        let blob = Assembler::new(0x4000).label("here").finish().unwrap();
        assert_eq!(blob.try_addr("here"), Ok(0x4000));
        assert_eq!(
            blob.try_addr("gone"),
            Err(AsmError::UndefinedLabel("gone".into()))
        );
    }

    #[test]
    fn org_too_far_errors_instead_of_allocating() {
        // Pre-fix this aborted the process trying to resize the byte
        // vector to (u64::MAX - pc) bytes.
        let mut a = Assembler::new(0x100);
        a.push(Inst::Ret);
        a.org(u64::MAX);
        assert!(matches!(
            a.finish(),
            Err(AsmError::OrgTooFar {
                at: 0x101,
                requested: u64::MAX
            })
        ));
        // The boundary itself assembles.
        let mut a = Assembler::new(0);
        a.org(Assembler::MAX_ORG_PAD);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn call_and_jcc_fixups() {
        let mut a = Assembler::new(0x2000);
        a.push(Inst::Cmp {
            a: Reg::R1,
            b: Reg::R2,
        });
        a.jb("taken");
        a.push(Inst::Ret);
        a.label("taken");
        a.call("fun");
        a.push(Inst::Halt);
        a.label("fun");
        a.push(Inst::Ret);
        let blob = a.finish().unwrap();
        let insts = decode_all(&blob.bytes);
        assert!(matches!(insts[1].1, Inst::Jcc { .. }));
        assert!(matches!(insts[3].1, Inst::Call { .. }));
        // The call targets "fun".
        let (call_off, call) = insts[3];
        assert_eq!(
            call.direct_target(blob.base + call_off as u64),
            Some(blob.addr("fun"))
        );
    }

    #[test]
    fn raw_bytes_are_emitted_verbatim() {
        let mut a = Assembler::new(0);
        a.bytes(vec![0xDE, 0xAD]);
        a.push(Inst::Ret);
        let blob = a.finish().unwrap();
        assert_eq!(blob.bytes, vec![0xDE, 0xAD, 0xC3]);
    }
}
