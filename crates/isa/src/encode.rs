//! Byte-level instruction encoding.
//!
//! The encoding is variable length (1–15 bytes). Opcode map:
//!
//! | opcode | instruction | total length |
//! |---|---|---|
//! | `0x90` | `nop` | 1 |
//! | `0x0F len pad…` | `nopN` (multi-byte nop) | `len` (3–15) |
//! | `0xE9 rel32` | `jmp` | 5 |
//! | `0xFF reg` | `jmp*` | 2 |
//! | `0x71 cc rel32` | `jcc` | 6 |
//! | `0xE8 rel32` | `call` | 5 |
//! | `0xF1 reg` | `call*` | 2 |
//! | `0xC3` | `ret` | 1 |
//! | `0x8B modrm disp32` | load | 6 |
//! | `0x89 modrm disp32` | store | 6 |
//! | `0xB8 reg imm64` | mov imm | 10 |
//! | `0x8A modrm` | mov reg | 2 |
//! | `0x01 op modrm` | alu | 3 |
//! | `0xC1 reg amt` | shr | 3 |
//! | `0xD1 reg amt` | shl | 3 |
//! | `0x81 reg imm32` | and imm | 6 |
//! | `0x39 modrm` | cmp | 2 |
//! | `0xFA` / `0xFB` | lfence / mfence | 1 |
//! | `0xAE reg` | clflush | 2 |
//! | `0x05` / `0x07` | syscall / sysret | 1 |
//! | `0xF4` | hlt | 1 |
//! | anything else | invalid | 1 |
//!
//! `modrm` packs two register indices into one byte (high nibble first).

use crate::inst::Inst;
use crate::reg::Reg;

/// Error returned when an [`Inst`] value cannot be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// `NopN` length outside 3–15.
    BadNopLen(u8),
    /// Shift amount outside 0–63.
    BadShiftAmount(u8),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BadNopLen(n) => write!(f, "multi-byte nop length {n} outside 3..=15"),
            EncodeError::BadShiftAmount(n) => write!(f, "shift amount {n} outside 0..=63"),
        }
    }
}

impl std::error::Error for EncodeError {}

fn modrm(hi: Reg, lo: Reg) -> u8 {
    (hi.index() << 4) | lo.index()
}

/// The encoded length of `inst` in bytes.
///
/// # Examples
///
/// ```
/// use phantom_isa::{encode::encoded_len, Inst};
/// assert_eq!(encoded_len(&Inst::Nop), 1);
/// assert_eq!(encoded_len(&Inst::Jmp { disp: 0 }), 5);
/// assert_eq!(encoded_len(&Inst::NopN { len: 9 }), 9);
/// ```
pub fn encoded_len(inst: &Inst) -> usize {
    match inst {
        Inst::Nop
        | Inst::Ret
        | Inst::Lfence
        | Inst::Mfence
        | Inst::Syscall
        | Inst::Sysret
        | Inst::Halt
        | Inst::Invalid { .. } => 1,
        Inst::NopN { len } => usize::from(*len),
        Inst::JmpInd { .. }
        | Inst::CallInd { .. }
        | Inst::MovReg { .. }
        | Inst::Cmp { .. }
        | Inst::Clflush { .. } => 2,
        Inst::Alu { .. } | Inst::Shr { .. } | Inst::Shl { .. } => 3,
        Inst::Jmp { .. } | Inst::Call { .. } => 5,
        Inst::Jcc { .. } | Inst::Load { .. } | Inst::Store { .. } | Inst::AndImm { .. } => 6,
        Inst::MovImm { .. } => 10,
    }
}

/// Encode `inst`, appending its bytes to `out`.
///
/// # Errors
///
/// Returns [`EncodeError`] if the instruction carries an out-of-range
/// field (`NopN` length, shift amount).
///
/// # Examples
///
/// ```
/// use phantom_isa::{encode::encode_into, Inst};
/// let mut buf = Vec::new();
/// encode_into(&Inst::Ret, &mut buf)?;
/// assert_eq!(buf, [0xC3]);
/// # Ok::<(), phantom_isa::encode::EncodeError>(())
/// ```
pub fn encode_into(inst: &Inst, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    match *inst {
        Inst::Nop => out.push(0x90),
        Inst::NopN { len } => {
            if !(3..=15).contains(&len) {
                return Err(EncodeError::BadNopLen(len));
            }
            out.push(0x0F);
            out.push(len);
            out.extend(std::iter::repeat_n(0x00, usize::from(len) - 2));
        }
        Inst::Jmp { disp } => {
            out.push(0xE9);
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::JmpInd { src } => {
            out.push(0xFF);
            out.push(src.index());
        }
        Inst::Jcc { cond, disp } => {
            out.push(0x71);
            out.push(cond.code());
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::Call { disp } => {
            out.push(0xE8);
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::CallInd { src } => {
            out.push(0xF1);
            out.push(src.index());
        }
        Inst::Ret => out.push(0xC3),
        Inst::Load { dst, base, disp } => {
            out.push(0x8B);
            out.push(modrm(dst, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::Store { base, disp, src } => {
            out.push(0x89);
            out.push(modrm(base, src));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::MovImm { dst, imm } => {
            out.push(0xB8);
            out.push(dst.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::MovReg { dst, src } => {
            out.push(0x8A);
            out.push(modrm(dst, src));
        }
        Inst::Alu { op, dst, src } => {
            out.push(0x01);
            out.push(op.code());
            out.push(modrm(dst, src));
        }
        Inst::Shr { dst, amount } => {
            if amount > 63 {
                return Err(EncodeError::BadShiftAmount(amount));
            }
            out.push(0xC1);
            out.push(dst.index());
            out.push(amount);
        }
        Inst::Shl { dst, amount } => {
            if amount > 63 {
                return Err(EncodeError::BadShiftAmount(amount));
            }
            out.push(0xD1);
            out.push(dst.index());
            out.push(amount);
        }
        Inst::AndImm { dst, imm } => {
            out.push(0x81);
            out.push(dst.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Cmp { a, b } => {
            out.push(0x39);
            out.push(modrm(a, b));
        }
        Inst::Lfence => out.push(0xFA),
        Inst::Mfence => out.push(0xFB),
        Inst::Clflush { addr } => {
            out.push(0xAE);
            out.push(addr.index());
        }
        Inst::Syscall => out.push(0x05),
        Inst::Sysret => out.push(0x07),
        Inst::Halt => out.push(0xF4),
        Inst::Invalid { byte } => out.push(byte),
    }
    Ok(())
}

/// Encode a sequence of instructions into a fresh byte vector.
///
/// # Errors
///
/// Returns the first [`EncodeError`] encountered.
pub fn encode_all<'a, I>(insts: I) -> Result<Vec<u8>, EncodeError>
where
    I: IntoIterator<Item = &'a Inst>,
{
    let mut out = Vec::new();
    for inst in insts {
        encode_into(inst, &mut out)?;
    }
    Ok(out)
}

/// Returns `true` if `inst` survives an encode/decode round trip
/// unchanged. `Invalid` bytes that alias real opcodes do not round-trip;
/// everything else should.
pub fn round_trips(inst: &Inst) -> bool {
    let mut buf = Vec::new();
    if encode_into(inst, &mut buf).is_err() {
        return false;
    }
    matches!(crate::decode::decode(&buf), Some((d, n)) if d == *inst && n == buf.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond};

    #[test]
    fn lengths_match_encoding() {
        let samples = [
            Inst::Nop,
            Inst::NopN { len: 4 },
            Inst::Jmp { disp: 1234 },
            Inst::JmpInd { src: Reg::R3 },
            Inst::Jcc {
                cond: Cond::Ne,
                disp: -4,
            },
            Inst::Call { disp: 0 },
            Inst::CallInd { src: Reg::R9 },
            Inst::Ret,
            Inst::Load {
                dst: Reg::R1,
                base: Reg::R2,
                disp: 16,
            },
            Inst::Store {
                base: Reg::R2,
                disp: -8,
                src: Reg::R1,
            },
            Inst::MovImm {
                dst: Reg::R0,
                imm: u64::MAX,
            },
            Inst::MovReg {
                dst: Reg::R4,
                src: Reg::R5,
            },
            Inst::Alu {
                op: AluOp::Xor,
                dst: Reg::R6,
                src: Reg::R7,
            },
            Inst::Shr {
                dst: Reg::R0,
                amount: 6,
            },
            Inst::Shl {
                dst: Reg::R0,
                amount: 12,
            },
            Inst::AndImm {
                dst: Reg::R0,
                imm: 0xFF,
            },
            Inst::Cmp {
                a: Reg::R1,
                b: Reg::R2,
            },
            Inst::Lfence,
            Inst::Mfence,
            Inst::Clflush { addr: Reg::R8 },
            Inst::Syscall,
            Inst::Sysret,
            Inst::Halt,
        ];
        for inst in &samples {
            let mut buf = Vec::new();
            encode_into(inst, &mut buf).unwrap();
            assert_eq!(buf.len(), encoded_len(inst), "{inst}");
            assert!(round_trips(inst), "{inst}");
        }
    }

    #[test]
    fn nopn_length_bounds_are_enforced() {
        let mut buf = Vec::new();
        assert_eq!(
            encode_into(&Inst::NopN { len: 2 }, &mut buf),
            Err(EncodeError::BadNopLen(2))
        );
        assert_eq!(
            encode_into(&Inst::NopN { len: 16 }, &mut buf),
            Err(EncodeError::BadNopLen(16))
        );
        assert!(encode_into(&Inst::NopN { len: 3 }, &mut buf).is_ok());
        assert!(encode_into(&Inst::NopN { len: 15 }, &mut buf).is_ok());
    }

    #[test]
    fn shift_amount_bounds_are_enforced() {
        let mut buf = Vec::new();
        assert_eq!(
            encode_into(
                &Inst::Shr {
                    dst: Reg::R0,
                    amount: 64
                },
                &mut buf
            ),
            Err(EncodeError::BadShiftAmount(64))
        );
        assert!(encode_into(
            &Inst::Shl {
                dst: Reg::R0,
                amount: 63
            },
            &mut buf
        )
        .is_ok());
    }

    #[test]
    fn encode_all_concatenates() {
        let insts = [Inst::Nop, Inst::Ret, Inst::Halt];
        let bytes = encode_all(&insts).unwrap();
        assert_eq!(bytes, vec![0x90, 0xC3, 0xF4]);
    }

    #[test]
    fn displacement_is_little_endian() {
        let mut buf = Vec::new();
        encode_into(&Inst::Jmp { disp: 0x0102_0304 }, &mut buf).unwrap();
        assert_eq!(buf, vec![0xE9, 0x04, 0x03, 0x02, 0x01]);
    }
}
