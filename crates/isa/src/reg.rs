//! General-purpose register file identifiers.

use std::fmt;

/// One of the sixteen general-purpose registers.
///
/// [`Reg::R15`] doubles as the stack pointer: `call` pushes the return
/// address through it and `ret` pops from it, mirroring `rsp` on x86-64.
///
/// # Examples
///
/// ```
/// use phantom_isa::Reg;
/// assert_eq!(Reg::from_index(3), Some(Reg::R3));
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(Reg::SP, Reg::R15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// The register that `call`/`ret` use as the stack pointer.
    pub const SP: Reg = Reg::R15;

    /// All sixteen registers, in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register with the given index, or `None` if `idx >= 16`.
    pub fn from_index(idx: u8) -> Option<Reg> {
        Reg::ALL.get(usize::from(idx)).copied()
    }

    /// The numeric index of this register (0–15).
    pub fn index(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_indices() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
    }

    #[test]
    fn out_of_range_is_none() {
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn stack_pointer_is_r15() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(Reg::SP.index(), 15);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R12.to_string(), "r12");
    }
}
