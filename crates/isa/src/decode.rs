//! Byte-level instruction decoding.
//!
//! Decoding is *total* over non-empty inputs with enough bytes: any byte
//! decodes to something, falling back to [`Inst::Invalid`]. This mirrors
//! hardware, where the decoder always produces an outcome for fetched
//! bytes — crucial for Phantom, where the frontend fetches and decodes at
//! addresses that may hold data, not code.

use crate::inst::{AluOp, Cond, Inst};
use crate::reg::Reg;

fn reg(byte: u8) -> Option<Reg> {
    Reg::from_index(byte)
}

fn split_modrm(byte: u8) -> Option<(Reg, Reg)> {
    Some((Reg::from_index(byte >> 4)?, Reg::from_index(byte & 0xF)?))
}

fn i32_at(bytes: &[u8], off: usize) -> Option<i32> {
    let b: [u8; 4] = bytes.get(off..off + 4)?.try_into().ok()?;
    Some(i32::from_le_bytes(b))
}

fn u32_at(bytes: &[u8], off: usize) -> Option<u32> {
    let b: [u8; 4] = bytes.get(off..off + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(b))
}

fn u64_at(bytes: &[u8], off: usize) -> Option<u64> {
    let b: [u8; 8] = bytes.get(off..off + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(b))
}

/// Decode one instruction from the front of `bytes`.
///
/// Returns the instruction and its encoded length, or `None` if `bytes`
/// is empty or holds a *truncated* multi-byte instruction (the caller —
/// the fetch unit — must supply more bytes).
///
/// Malformed but complete encodings (bad register index, bad condition
/// code, bad nop length) decode to [`Inst::Invalid`] consuming one byte,
/// so decoding always makes progress on any sufficiently long input.
///
/// # Examples
///
/// ```
/// use phantom_isa::{decode::decode, Inst};
/// assert_eq!(decode(&[0x90]), Some((Inst::Nop, 1)));
/// assert_eq!(decode(&[0xC3, 0x90]), Some((Inst::Ret, 1)));
/// // 0xE9 needs 4 displacement bytes: truncated input decodes to None.
/// assert_eq!(decode(&[0xE9, 0x01]), None);
/// // Unknown opcodes decode to Invalid.
/// assert_eq!(decode(&[0x42]), Some((Inst::Invalid { byte: 0x42 }, 1)));
/// ```
pub fn decode(bytes: &[u8]) -> Option<(Inst, usize)> {
    let op = *bytes.first()?;
    let invalid = Some((Inst::Invalid { byte: op }, 1));
    match op {
        0x90 => Some((Inst::Nop, 1)),
        0x0F => {
            let len = *bytes.get(1)?;
            if !(3..=15).contains(&len) {
                return invalid;
            }
            if bytes.len() < usize::from(len) {
                return None;
            }
            Some((Inst::NopN { len }, usize::from(len)))
        }
        0xE9 => Some((
            Inst::Jmp {
                disp: i32_at(bytes, 1)?,
            },
            5,
        )),
        0xFF => match reg(*bytes.get(1)?) {
            Some(src) => Some((Inst::JmpInd { src }, 2)),
            None => invalid,
        },
        0x71 => {
            let cond = match Cond::from_code(*bytes.get(1)?) {
                Some(c) => c,
                None => return invalid,
            };
            Some((
                Inst::Jcc {
                    cond,
                    disp: i32_at(bytes, 2)?,
                },
                6,
            ))
        }
        0xE8 => Some((
            Inst::Call {
                disp: i32_at(bytes, 1)?,
            },
            5,
        )),
        0xF1 => match reg(*bytes.get(1)?) {
            Some(src) => Some((Inst::CallInd { src }, 2)),
            None => invalid,
        },
        0xC3 => Some((Inst::Ret, 1)),
        0x8B => {
            let (dst, base) = match split_modrm(*bytes.get(1)?) {
                Some(p) => p,
                None => return invalid,
            };
            Some((
                Inst::Load {
                    dst,
                    base,
                    disp: i32_at(bytes, 2)?,
                },
                6,
            ))
        }
        0x89 => {
            let (base, src) = match split_modrm(*bytes.get(1)?) {
                Some(p) => p,
                None => return invalid,
            };
            Some((
                Inst::Store {
                    base,
                    disp: i32_at(bytes, 2)?,
                    src,
                },
                6,
            ))
        }
        0xB8 => {
            let dst = match reg(*bytes.get(1)?) {
                Some(r) => r,
                None => return invalid,
            };
            Some((
                Inst::MovImm {
                    dst,
                    imm: u64_at(bytes, 2)?,
                },
                10,
            ))
        }
        0x8A => match split_modrm(*bytes.get(1)?) {
            Some((dst, src)) => Some((Inst::MovReg { dst, src }, 2)),
            None => invalid,
        },
        0x01 => {
            let aop = match AluOp::from_code(*bytes.get(1)?) {
                Some(o) => o,
                None => return invalid,
            };
            match split_modrm(*bytes.get(2)?) {
                Some((dst, src)) => Some((Inst::Alu { op: aop, dst, src }, 3)),
                None => invalid,
            }
        }
        0xC1 | 0xD1 => {
            let dst = match reg(*bytes.get(1)?) {
                Some(r) => r,
                None => return invalid,
            };
            let amount = *bytes.get(2)?;
            if amount > 63 {
                return invalid;
            }
            if op == 0xC1 {
                Some((Inst::Shr { dst, amount }, 3))
            } else {
                Some((Inst::Shl { dst, amount }, 3))
            }
        }
        0x81 => {
            let dst = match reg(*bytes.get(1)?) {
                Some(r) => r,
                None => return invalid,
            };
            Some((
                Inst::AndImm {
                    dst,
                    imm: u32_at(bytes, 2)?,
                },
                6,
            ))
        }
        0x39 => match split_modrm(*bytes.get(1)?) {
            Some((a, b)) => Some((Inst::Cmp { a, b }, 2)),
            None => invalid,
        },
        0xFA => Some((Inst::Lfence, 1)),
        0xFB => Some((Inst::Mfence, 1)),
        0xAE => match reg(*bytes.get(1)?) {
            Some(addr) => Some((Inst::Clflush { addr }, 2)),
            None => invalid,
        },
        0x05 => Some((Inst::Syscall, 1)),
        0x07 => Some((Inst::Sysret, 1)),
        0xF4 => Some((Inst::Halt, 1)),
        other => Some((Inst::Invalid { byte: other }, 1)),
    }
}

/// Decode as many whole instructions as fit in `bytes`, stopping at a
/// truncated tail.
///
/// # Examples
///
/// ```
/// use phantom_isa::{decode::decode_all, Inst};
/// let insts = decode_all(&[0x90, 0xC3, 0xE9, 0x00]); // trailing truncated jmp
/// assert_eq!(insts, vec![(0, Inst::Nop), (1, Inst::Ret)]);
/// ```
pub fn decode_all(bytes: &[u8]) -> Vec<(usize, Inst)> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < bytes.len() {
        match decode(&bytes[off..]) {
            Some((inst, len)) => {
                out.push((off, inst));
                off += len;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_none() {
        assert_eq!(decode(&[]), None);
    }

    #[test]
    fn truncated_multibyte_is_none() {
        assert_eq!(decode(&[0xE9]), None);
        assert_eq!(decode(&[0xE9, 1, 2, 3]), None);
        assert_eq!(decode(&[0xB8, 0]), None);
        assert_eq!(decode(&[0x0F, 8, 0, 0]), None); // nop8 needs 8 bytes
    }

    #[test]
    fn bad_fields_decode_to_invalid_one_byte() {
        // NopN with out-of-range length byte.
        assert_eq!(
            decode(&[0x0F, 2, 0]),
            Some((Inst::Invalid { byte: 0x0F }, 1))
        );
        assert_eq!(decode(&[0x0F, 16]), Some((Inst::Invalid { byte: 0x0F }, 1)));
        // JmpInd with register index >= 16.
        assert_eq!(
            decode(&[0xFF, 0x20]),
            Some((Inst::Invalid { byte: 0xFF }, 1))
        );
        // Jcc with bad condition code.
        assert_eq!(
            decode(&[0x71, 9, 0, 0, 0, 0]),
            Some((Inst::Invalid { byte: 0x71 }, 1))
        );
        // Shift with amount > 63.
        assert_eq!(
            decode(&[0xC1, 0, 64]),
            Some((Inst::Invalid { byte: 0xC1 }, 1))
        );
    }

    #[test]
    fn unknown_opcodes_are_invalid() {
        for op in [0x00u8, 0x42, 0x66, 0xCC, 0xDE] {
            assert_eq!(decode(&[op]), Some((Inst::Invalid { byte: op }, 1)));
        }
    }

    #[test]
    fn decode_all_walks_a_blob() {
        // nop; ret; jmp -5; hlt
        let bytes = [0x90, 0xC3, 0xE9, 0xFB, 0xFF, 0xFF, 0xFF, 0xF4];
        let insts = decode_all(&bytes);
        assert_eq!(
            insts,
            vec![
                (0, Inst::Nop),
                (1, Inst::Ret),
                (2, Inst::Jmp { disp: -5 }),
                (7, Inst::Halt),
            ]
        );
    }

    #[test]
    fn data_bytes_decode_to_something() {
        // A phantom target pointing at "data" still decodes: totality.
        let data: Vec<u8> = (0u8..=255).collect();
        let mut off = 0;
        let mut count = 0;
        while off < data.len() {
            match decode(&data[off..]) {
                Some((_, len)) => {
                    assert!(len >= 1);
                    off += len;
                    count += 1;
                }
                None => break, // truncated tail only
            }
        }
        assert!(count > 100, "most of the byte space decodes, got {count}");
    }
}
