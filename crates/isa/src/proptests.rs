//! Property-based tests for the encoder/decoder pair.

use proptest::prelude::*;

use crate::decode::{decode, decode_all};
use crate::encode::{encode_all, encode_into};
use crate::inst::{AluOp, Cond, Inst};
use crate::reg::Reg;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..6).prop_map(|c| Cond::from_code(c).unwrap())
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    (0u8..5).prop_map(|c| AluOp::from_code(c).unwrap())
}

/// Any encodable (non-`Invalid`) instruction.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        (3u8..=15).prop_map(|len| Inst::NopN { len }),
        any::<i32>().prop_map(|disp| Inst::Jmp { disp }),
        arb_reg().prop_map(|src| Inst::JmpInd { src }),
        (arb_cond(), any::<i32>()).prop_map(|(cond, disp)| Inst::Jcc { cond, disp }),
        any::<i32>().prop_map(|disp| Inst::Call { disp }),
        arb_reg().prop_map(|src| Inst::CallInd { src }),
        Just(Inst::Ret),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, disp)| Inst::Load {
            dst,
            base,
            disp
        }),
        (arb_reg(), any::<i32>(), arb_reg()).prop_map(|(base, disp, src)| Inst::Store {
            base,
            disp,
            src
        }),
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Inst::Alu { op, dst, src }),
        (arb_reg(), 0u8..64).prop_map(|(dst, amount)| Inst::Shr { dst, amount }),
        (arb_reg(), 0u8..64).prop_map(|(dst, amount)| Inst::Shl { dst, amount }),
        (arb_reg(), any::<u32>()).prop_map(|(dst, imm)| Inst::AndImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::Cmp { a, b }),
        Just(Inst::Lfence),
        Just(Inst::Mfence),
        arb_reg().prop_map(|addr| Inst::Clflush { addr }),
        Just(Inst::Syscall),
        Just(Inst::Sysret),
        Just(Inst::Halt),
    ]
}

proptest! {
    /// encode → decode round-trips any instruction with its exact length.
    #[test]
    fn encode_decode_round_trip(inst in arb_inst()) {
        let mut buf = Vec::new();
        encode_into(&inst, &mut buf).unwrap();
        prop_assert_eq!(buf.len(), inst.len());
        let (decoded, len) = decode(&buf).expect("decodes");
        prop_assert_eq!(decoded, inst);
        prop_assert_eq!(len, buf.len());
    }

    /// A whole instruction sequence decodes back instruction by
    /// instruction at the right offsets.
    #[test]
    fn sequence_round_trip(insts in proptest::collection::vec(arb_inst(), 1..40)) {
        let bytes = encode_all(&insts).unwrap();
        let decoded = decode_all(&bytes);
        prop_assert_eq!(decoded.len(), insts.len());
        let mut off = 0;
        for ((doff, dinst), inst) in decoded.iter().zip(&insts) {
            prop_assert_eq!(*doff, off);
            prop_assert_eq!(dinst, inst);
            off += inst.len();
        }
        prop_assert_eq!(off, bytes.len());
    }

    /// Decoding arbitrary bytes never panics and always makes progress
    /// (totality over complete inputs).
    #[test]
    fn decode_is_total_and_progresses(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut off = 0;
        while off < bytes.len() {
            match decode(&bytes[off..]) {
                Some((_, len)) => {
                    prop_assert!(len >= 1, "zero-length decode");
                    off += len;
                }
                None => break, // truncated tail — allowed
            }
        }
        // When decode returns None the remaining input must be a strict
        // prefix of some multi-byte instruction, i.e. shorter than 15.
        prop_assert!(bytes.len() - off < 15);
    }

    /// `direct_target` is consistent with reassembling at a new address:
    /// displacement semantics are position-relative only.
    #[test]
    fn direct_target_translation_invariance(disp in any::<i32>(), pc in 0u64..u64::MAX / 2) {
        let j = Inst::Jmp { disp };
        let t0 = j.direct_target(pc).unwrap();
        let t1 = j.direct_target(pc + 0x1000).unwrap();
        prop_assert_eq!(t1.wrapping_sub(t0), 0x1000);
    }

    /// Assembler label programs round-trip: every emitted direct branch
    /// reaches exactly the address of its label.
    #[test]
    fn assembler_fixups_hit_their_labels(
        base in 0u64..1 << 30,
        pads in proptest::collection::vec(0u64..64, 1..12),
    ) {
        use crate::asm::Assembler;
        let mut a = Assembler::new(base & !0xfff);
        // A chain: jmp l0; pad; l0: jmp l1; pad; ... ln: hlt
        for (i, &pad) in pads.iter().enumerate() {
            a.jmp(format!("l{i}"));
            for _ in 0..pad {
                a.push(Inst::Nop);
            }
            a.label(format!("l{i}"));
        }
        a.push(Inst::Halt);
        let blob = a.finish().unwrap();
        let insts = decode_all(&blob.bytes);
        let mut jumps = 0;
        for (off, inst) in &insts {
            if let Inst::Jmp { .. } = inst {
                let target = inst.direct_target(blob.base + *off as u64).unwrap();
                prop_assert_eq!(target, blob.addr(&format!("l{jumps}")));
                jumps += 1;
            }
        }
        prop_assert_eq!(jumps, pads.len());
    }
}
