//! Confidence-scored observations.
//!
//! Raw side-channel measurements are booleans ("the line reloaded
//! fast") that throw away *how* fast — a reload one cycle under the
//! threshold and one twenty cycles under it classify identically, yet
//! the first is far more likely to be jitter. A [`Reading`] keeps the
//! margin from the calibrated threshold and normalizes it into a
//! [`Confidence`] in `[0, 1]`, so decoders can escalate, retry or
//! abstain instead of trusting a coin-flip measurement. A [`VoteTally`]
//! aggregates repeated readings the way the paper's §7.3 repetition
//! strategy does, with an explicit tie (`majority() == None`) instead
//! of an arbitrary winner.

/// How much a measurement should be trusted, in `[0, 1]`.
///
/// 0 means "indistinguishable from noise" (the measurement sat exactly
/// on the classification threshold), 1 means "a full signal span from
/// the threshold". Values are clamped on construction so arithmetic on
/// margins can never produce an out-of-range confidence.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Confidence(f64);

impl Confidence {
    /// No trust at all.
    pub const ZERO: Confidence = Confidence(0.0);
    /// Full trust.
    pub const FULL: Confidence = Confidence(1.0);

    /// Clamp `value` into `[0, 1]` (NaN clamps to 0).
    pub fn new(value: f64) -> Confidence {
        if value.is_nan() {
            return Confidence(0.0);
        }
        Confidence(value.clamp(0.0, 1.0))
    }

    /// Confidence of a measurement `margin` cycles from the threshold
    /// when a full signal is `span` cycles wide. A zero span (no
    /// calibrated separation) yields zero confidence.
    pub fn from_margin(margin: u64, span: u64) -> Confidence {
        if span == 0 {
            return Confidence::ZERO;
        }
        Confidence::new(margin as f64 / span as f64)
    }

    /// The clamped value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether this confidence reaches `floor`.
    pub fn meets(self, floor: f64) -> bool {
        self.0 >= floor
    }

    /// The smaller of two confidences (a chain of measurements is only
    /// as trustworthy as its weakest link).
    pub fn min(self, other: Confidence) -> Confidence {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

/// One confidence-scored side-channel observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// The classification (`true` = signal observed: a cached reload, a
    /// probed eviction, an Evict+Time slowdown).
    pub hit: bool,
    /// The raw measured cycles behind the classification.
    pub cycles: u64,
    /// Distance of the measurement from the classification threshold,
    /// in cycles.
    pub margin: u64,
    /// The margin normalized against the calibrated signal span.
    pub confidence: Confidence,
}

impl Reading {
    /// Classify a timed reload against `threshold`: at or below is a
    /// hit. `span` is the calibrated hit/miss separation the margin is
    /// normalized by.
    pub fn classify(latency: u64, threshold: u64, span: u64) -> Reading {
        let hit = latency <= threshold;
        let margin = if hit {
            threshold - latency
        } else {
            latency - threshold
        };
        Reading {
            hit,
            cycles: latency,
            margin,
            confidence: Confidence::from_margin(margin, span),
        }
    }

    /// A reading that carries no information (e.g. the target was
    /// unmapped and nothing could be measured).
    pub fn none() -> Reading {
        Reading {
            hit: false,
            cycles: 0,
            margin: 0,
            confidence: Confidence::ZERO,
        }
    }
}

/// A running tally of repeated boolean observations of one bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VoteTally {
    /// Votes for `true`.
    pub ones: u32,
    /// Total votes cast.
    pub total: u32,
}

impl VoteTally {
    /// An empty tally.
    pub fn new() -> VoteTally {
        VoteTally::default()
    }

    /// Record one vote.
    pub fn push(&mut self, vote: bool) {
        self.ones += u32::from(vote);
        self.total += 1;
    }

    /// The majority decision, or `None` on an exact tie (or an empty
    /// tally) — the caller decides whether a tie means "escalate" or
    /// "abstain", never a coin flip.
    pub fn majority(self) -> Option<bool> {
        if self.total == 0 || self.ones * 2 == self.total {
            return None;
        }
        Some(self.ones * 2 > self.total)
    }

    /// How lopsided the tally is: `|2·ones/total − 1|`, so a unanimous
    /// tally scores 1 and a tie scores 0.
    pub fn confidence(self) -> Confidence {
        if self.total == 0 {
            return Confidence::ZERO;
        }
        let ratio = self.ones as f64 / self.total as f64;
        Confidence::new((2.0 * ratio - 1.0).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_clamps_and_handles_nan() {
        assert_eq!(Confidence::new(-0.5).value(), 0.0);
        assert_eq!(Confidence::new(1.5).value(), 1.0);
        assert_eq!(Confidence::new(f64::NAN).value(), 0.0);
        assert_eq!(Confidence::new(0.25).value(), 0.25);
    }

    #[test]
    fn margin_normalizes_against_the_span() {
        assert_eq!(Confidence::from_margin(0, 100).value(), 0.0);
        assert_eq!(Confidence::from_margin(50, 100).value(), 0.5);
        assert_eq!(Confidence::from_margin(200, 100).value(), 1.0);
        assert_eq!(Confidence::from_margin(7, 0), Confidence::ZERO);
    }

    #[test]
    fn classify_scores_distance_from_the_threshold() {
        let hit = Reading::classify(4, 10, 20);
        assert!(hit.hit);
        assert_eq!(hit.margin, 6);
        assert_eq!(hit.confidence.value(), 0.3);
        let miss = Reading::classify(30, 10, 20);
        assert!(!miss.hit);
        assert_eq!(miss.margin, 20);
        assert_eq!(miss.confidence, Confidence::FULL);
        // Exactly on the threshold: a hit, but worth nothing.
        let edge = Reading::classify(10, 10, 20);
        assert!(edge.hit);
        assert_eq!(edge.confidence, Confidence::ZERO);
    }

    #[test]
    fn tally_majority_is_none_on_ties_and_empty() {
        let mut t = VoteTally::new();
        assert_eq!(t.majority(), None);
        t.push(true);
        assert_eq!(t.majority(), Some(true));
        t.push(false);
        assert_eq!(t.majority(), None, "1–1 is a tie");
        t.push(false);
        assert_eq!(t.majority(), Some(false));
    }

    #[test]
    fn tally_confidence_is_lopsidedness() {
        let mut t = VoteTally::new();
        assert_eq!(t.confidence(), Confidence::ZERO);
        t.push(true);
        t.push(true);
        assert_eq!(t.confidence(), Confidence::FULL);
        t.push(false);
        t.push(false);
        assert_eq!(t.confidence(), Confidence::ZERO, "2–2 tie");
        t.push(false);
        t.push(false);
        assert!((t.confidence().value() - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn weakest_link_min() {
        let a = Confidence::new(0.9);
        let b = Confidence::new(0.2);
        assert_eq!(a.min(b), b);
        assert_eq!(b.min(a), b);
    }
}
