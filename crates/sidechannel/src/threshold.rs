//! Timing calibration: where is the line between "cached" and "not"?

use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::Machine;

use crate::flush_reload::{flush, reload};
use crate::noise::NoiseModel;

/// Error from [`Calibration::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// The scratch page could not be mapped (machine out of memory).
    ScratchUnmappable(String),
    /// A page is already mapped at the scratch address with flags other
    /// than `USER_DATA` — timing an executable or kernel page would
    /// silently calibrate against the wrong access path, so this is an
    /// error instead of a garbage measurement.
    ScratchFlagMismatch(PageFlags),
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::ScratchUnmappable(e) => {
                write!(f, "calibration scratch page unmappable: {e}")
            }
            CalibrationError::ScratchFlagMismatch(flags) => write!(
                f,
                "calibration scratch page premapped with non-USER_DATA flags {flags:?}"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Calibrated hit/miss boundary for timed reloads.
///
/// # Examples
///
/// ```
/// use phantom_pipeline::{Machine, UarchProfile};
/// use phantom_sidechannel::{Calibration, NoiseModel};
///
/// let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
/// let mut noise = NoiseModel::realistic(1);
/// let cal = Calibration::run(&mut m, &mut noise, 64)?;
/// assert!((cal.threshold as f64) > cal.hit_mean);
/// assert!((cal.threshold as f64) < cal.miss_mean);
/// # Ok::<(), phantom_sidechannel::CalibrationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Mean measured latency of cached reloads.
    pub hit_mean: f64,
    /// Mean measured latency of uncached reloads.
    pub miss_mean: f64,
    /// The classification threshold (midpoint, floor-biased toward
    /// hits).
    pub threshold: u64,
}

impl Calibration {
    /// Measure `rounds` hit and miss reloads on a scratch page and place
    /// the threshold between the distributions.
    ///
    /// The scratch page is borrowed, not leaked: a `USER_DATA` page
    /// already mapped at the scratch address is reused, and a page this
    /// call had to map is unmapped again before returning — so repeated
    /// calibrations on one machine are idempotent and never collide with
    /// a caller's own use of the address. A premapped page with any
    /// *other* flags is a [`CalibrationError::ScratchFlagMismatch`]:
    /// timing through the wrong access path would calibrate garbage.
    ///
    /// The threshold is the floor-biased midpoint of the two means,
    /// clamped so it always classifies the observed hit mean as a hit
    /// (`threshold > hit_mean`), even when the distributions sit within
    /// a cycle of each other.
    ///
    /// # Errors
    ///
    /// Returns a [`CalibrationError`] if the scratch page cannot be
    /// mapped or is premapped with non-`USER_DATA` flags.
    pub fn run(
        machine: &mut Machine,
        noise: &mut NoiseModel,
        rounds: usize,
    ) -> Result<Calibration, CalibrationError> {
        let scratch = VirtAddr::new(0x5fff_0000);
        let premapped = match machine.page_table().flags_of(scratch) {
            Some(flags) if flags != PageFlags::USER_DATA => {
                return Err(CalibrationError::ScratchFlagMismatch(flags));
            }
            Some(_) => true,
            None => false,
        };
        if !premapped {
            machine
                .map_range(scratch, 4096, PageFlags::USER_DATA)
                .map_err(|e| CalibrationError::ScratchUnmappable(e.to_string()))?;
        }
        let mut hit_total = 0u64;
        let mut miss_total = 0u64;
        for _ in 0..rounds.max(1) {
            flush(machine, scratch);
            miss_total += reload(machine, scratch, noise);
            hit_total += reload(machine, scratch, noise);
        }
        if !premapped {
            machine.unmap_range(scratch, 4096);
        }
        let n = rounds.max(1) as f64;
        let hit_mean = hit_total as f64 / n;
        let miss_mean = miss_total as f64 / n;
        let mid = ((hit_mean + miss_mean) / 2.0).floor() as u64;
        let threshold = mid.max(hit_mean.floor() as u64 + 1);
        Ok(Calibration {
            hit_mean,
            miss_mean,
            threshold,
        })
    }

    /// The calibrated hit/miss separation in cycles — the span a
    /// measurement's margin is normalized against, never below 1.
    pub fn span(&self) -> u64 {
        (self.miss_mean - self.hit_mean).abs().max(1.0) as u64
    }
}

/// Smoothing factor for the recalibrator's running margin estimate.
const MARGIN_EWMA_ALPHA: f64 = 0.25;

/// Auto-recalibration: watch the hit/miss margins the measurement loop
/// actually observes, and re-run [`Calibration::run`] when the running
/// estimate collapses below a guard band of the calibrated span — the
/// signature of thermal drift, a migrated victim, or an invalidated
/// threshold.
///
/// The margin estimate is an exponentially-weighted moving average so a
/// single noisy observation cannot trigger a recalibration storm, yet a
/// sustained collapse reacts within a few observations.
#[derive(Debug, Clone)]
pub struct Recalibrator {
    /// Fraction of the calibrated span below which the running margin
    /// triggers recalibration (e.g. `0.25` = recalibrate when observed
    /// margins fall under a quarter of the calibrated separation).
    pub guard_band: f64,
    /// Rounds to pass to [`Calibration::run`] when recalibrating.
    pub rounds: usize,
    ewma: Option<f64>,
    recalibrations: usize,
}

impl Recalibrator {
    /// A recalibrator with the given guard band (fraction of the span)
    /// and per-recalibration round count.
    pub fn new(guard_band: f64, rounds: usize) -> Recalibrator {
        Recalibrator {
            guard_band,
            rounds,
            ewma: None,
            recalibrations: 0,
        }
    }

    /// How many times `observe` re-ran the calibration.
    pub fn recalibrations(&self) -> usize {
        self.recalibrations
    }

    /// The current running margin estimate, if any observation arrived.
    pub fn margin_estimate(&self) -> Option<f64> {
        self.ewma
    }

    /// Feed one observed margin (cycles from the threshold). When the
    /// running estimate drops below `guard_band × cal.span()`, re-runs
    /// the calibration in place, resets the estimate, and returns
    /// `Ok(true)`.
    ///
    /// # Errors
    ///
    /// Propagates [`CalibrationError`] from the re-run.
    pub fn observe(
        &mut self,
        margin: u64,
        cal: &mut Calibration,
        machine: &mut Machine,
        noise: &mut NoiseModel,
    ) -> Result<bool, CalibrationError> {
        let m = margin as f64;
        let ewma = match self.ewma {
            None => m,
            Some(prev) => prev + MARGIN_EWMA_ALPHA * (m - prev),
        };
        self.ewma = Some(ewma);
        if ewma >= self.guard_band * cal.span() as f64 {
            return Ok(false);
        }
        *cal = Calibration::run(machine, noise, self.rounds)?;
        self.ewma = None;
        self.recalibrations += 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_pipeline::UarchProfile;

    #[test]
    fn distributions_are_separable() {
        let mut m = Machine::new(UarchProfile::zen3(), 1 << 24);
        let mut noise = NoiseModel::realistic(7);
        let cal = Calibration::run(&mut m, &mut noise, 32).unwrap();
        assert!(cal.miss_mean > cal.hit_mean + 50.0, "{cal:?}");
        assert!((cal.hit_mean as u64) < cal.threshold);
        assert!(cal.threshold < cal.miss_mean as u64);
    }

    #[test]
    fn quiet_noise_matches_configured_latencies() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let cal = Calibration::run(&mut m, &mut noise, 8).unwrap();
        let cfg = m.caches().config();
        assert_eq!(cal.hit_mean as u64, cfg.l1_latency);
        assert_eq!(
            cal.miss_mean as u64,
            cfg.l1_latency + cfg.l2_latency + cfg.memory_latency
        );
        assert_eq!(
            cal.span(),
            cfg.l2_latency + cfg.memory_latency,
            "span is the hit/miss separation"
        );
    }

    #[test]
    fn scratch_page_is_unmapped_after_calibration() {
        let scratch = VirtAddr::new(0x5fff_0000);
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let cal1 = Calibration::run(&mut m, &mut noise, 8).unwrap();
        assert_eq!(
            m.page_table().flags_of(scratch),
            None,
            "calibration must not leak its scratch mapping"
        );
        // A second calibration on the same machine works and agrees.
        let mut noise = NoiseModel::quiet(0);
        let cal2 = Calibration::run(&mut m, &mut noise, 8).unwrap();
        assert_eq!(cal1, cal2);
        // The address stays free for the caller to map however it likes.
        m.map_range(scratch, 4096, PageFlags::USER_TEXT).unwrap();
    }

    #[test]
    fn premapped_scratch_page_is_reused_and_kept() {
        let scratch = VirtAddr::new(0x5fff_0000);
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        m.map_range(scratch, 4096, PageFlags::USER_DATA).unwrap();
        let mut noise = NoiseModel::quiet(0);
        Calibration::run(&mut m, &mut noise, 8).unwrap();
        assert_eq!(
            m.page_table().flags_of(scratch),
            Some(PageFlags::USER_DATA),
            "a caller-owned scratch mapping must survive calibration"
        );
    }

    #[test]
    fn premapped_scratch_page_with_wrong_flags_is_an_error() {
        // Regression: a scratch page premapped executable used to be
        // silently timed through the data path — garbage calibration.
        let scratch = VirtAddr::new(0x5fff_0000);
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        m.map_range(scratch, 4096, PageFlags::USER_TEXT).unwrap();
        let mut noise = NoiseModel::quiet(0);
        assert_eq!(
            Calibration::run(&mut m, &mut noise, 8),
            Err(CalibrationError::ScratchFlagMismatch(PageFlags::USER_TEXT)),
        );
        // The caller's mapping is untouched.
        assert_eq!(m.page_table().flags_of(scratch), Some(PageFlags::USER_TEXT));
    }

    #[test]
    fn threshold_stays_above_hit_mean_for_near_equal_means() {
        // Pathological hierarchy: a miss costs one cycle more than a
        // hit. The floor-biased midpoint would equal the hit mean and
        // classify every hit as a miss; the clamp keeps the documented
        // `threshold > hit_mean` contract.
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let cfg = phantom_cache::HierarchyConfig {
            l2_latency: 0,
            memory_latency: 1,
            ..*m.caches().config()
        };
        *m.caches_mut() = phantom_cache::CacheHierarchy::new(cfg);
        let mut noise = NoiseModel::quiet(0);
        let cal = Calibration::run(&mut m, &mut noise, 8).unwrap();
        assert_eq!(cal.hit_mean, 4.0);
        assert_eq!(cal.miss_mean, 5.0);
        assert!(
            (cal.threshold as f64) > cal.hit_mean,
            "threshold {} must exceed hit mean {}",
            cal.threshold,
            cal.hit_mean
        );
        assert_eq!(cal.span(), 1, "span never collapses below one cycle");
    }

    #[test]
    fn healthy_margins_never_trigger_recalibration() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let mut cal = Calibration::run(&mut m, &mut noise, 8).unwrap();
        let before = cal;
        let mut rec = Recalibrator::new(0.25, 8);
        let healthy = cal.span(); // full-span margins
        for _ in 0..50 {
            let fired = rec.observe(healthy, &mut cal, &mut m, &mut noise).unwrap();
            assert!(!fired);
        }
        assert_eq!(rec.recalibrations(), 0);
        assert_eq!(cal, before, "calibration untouched");
    }

    #[test]
    fn collapsed_margins_trigger_recalibration() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let mut cal = Calibration::run(&mut m, &mut noise, 8).unwrap();
        let mut rec = Recalibrator::new(0.25, 8);
        // Sustained near-zero margins: the EWMA collapses immediately
        // from the uninitialized state.
        let fired = rec.observe(0, &mut cal, &mut m, &mut noise).unwrap();
        assert!(fired, "margin collapse must recalibrate");
        assert_eq!(rec.recalibrations(), 1);
        assert_eq!(rec.margin_estimate(), None, "estimate reset after re-run");
        // The refreshed calibration is sane.
        assert!((cal.threshold as f64) > cal.hit_mean);
    }

    #[test]
    fn one_noisy_margin_does_not_storm() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let mut cal = Calibration::run(&mut m, &mut noise, 8).unwrap();
        let mut rec = Recalibrator::new(0.25, 8);
        // Warm the estimate with healthy margins, then one outlier: the
        // EWMA absorbs it.
        let healthy = cal.span();
        for _ in 0..10 {
            rec.observe(healthy, &mut cal, &mut m, &mut noise).unwrap();
        }
        let fired = rec.observe(0, &mut cal, &mut m, &mut noise).unwrap();
        assert!(!fired, "a single outlier must not recalibrate");
        assert_eq!(rec.recalibrations(), 0);
    }
}
