//! Timing calibration: where is the line between "cached" and "not"?

use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::Machine;

use crate::flush_reload::{flush, reload};
use crate::noise::NoiseModel;

/// Calibrated hit/miss boundary for timed reloads.
///
/// # Examples
///
/// ```
/// use phantom_pipeline::{Machine, UarchProfile};
/// use phantom_sidechannel::{Calibration, NoiseModel};
///
/// let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
/// let mut noise = NoiseModel::realistic(1);
/// let cal = Calibration::run(&mut m, &mut noise, 64);
/// assert!((cal.threshold as f64) > cal.hit_mean);
/// assert!((cal.threshold as f64) < cal.miss_mean);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Mean measured latency of cached reloads.
    pub hit_mean: f64,
    /// Mean measured latency of uncached reloads.
    pub miss_mean: f64,
    /// The classification threshold (midpoint, floor-biased toward
    /// hits).
    pub threshold: u64,
}

impl Calibration {
    /// Measure `rounds` hit and miss reloads on a scratch page and place
    /// the threshold between the distributions.
    ///
    /// The scratch page is borrowed, not leaked: a page already mapped
    /// at the scratch address is reused as-is (whatever its flags), and
    /// a page this call had to map is unmapped again before returning —
    /// so repeated calibrations on one machine are idempotent and never
    /// collide with a caller's own use of the address.
    ///
    /// The threshold is the floor-biased midpoint of the two means,
    /// clamped so it always classifies the observed hit mean as a hit
    /// (`threshold > hit_mean`), even when the distributions sit within
    /// a cycle of each other.
    ///
    /// # Panics
    ///
    /// Panics if the scratch page cannot be mapped (machine out of
    /// memory during calibration is a setup bug).
    pub fn run(machine: &mut Machine, noise: &mut NoiseModel, rounds: usize) -> Calibration {
        let scratch = VirtAddr::new(0x5fff_0000);
        let premapped = machine.page_table().flags_of(scratch).is_some();
        if !premapped {
            machine
                .map_range(scratch, 4096, PageFlags::USER_DATA)
                .expect("calibration scratch page");
        }
        let mut hit_total = 0u64;
        let mut miss_total = 0u64;
        for _ in 0..rounds.max(1) {
            flush(machine, scratch);
            miss_total += reload(machine, scratch, noise);
            hit_total += reload(machine, scratch, noise);
        }
        if !premapped {
            machine.unmap_range(scratch, 4096);
        }
        let n = rounds.max(1) as f64;
        let hit_mean = hit_total as f64 / n;
        let miss_mean = miss_total as f64 / n;
        let mid = ((hit_mean + miss_mean) / 2.0).floor() as u64;
        let threshold = mid.max(hit_mean.floor() as u64 + 1);
        Calibration {
            hit_mean,
            miss_mean,
            threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_pipeline::UarchProfile;

    #[test]
    fn distributions_are_separable() {
        let mut m = Machine::new(UarchProfile::zen3(), 1 << 24);
        let mut noise = NoiseModel::realistic(7);
        let cal = Calibration::run(&mut m, &mut noise, 32);
        assert!(cal.miss_mean > cal.hit_mean + 50.0, "{cal:?}");
        assert!((cal.hit_mean as u64) < cal.threshold);
        assert!(cal.threshold < cal.miss_mean as u64);
    }

    #[test]
    fn quiet_noise_matches_configured_latencies() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let cal = Calibration::run(&mut m, &mut noise, 8);
        let cfg = m.caches().config();
        assert_eq!(cal.hit_mean as u64, cfg.l1_latency);
        assert_eq!(
            cal.miss_mean as u64,
            cfg.l1_latency + cfg.l2_latency + cfg.memory_latency
        );
    }

    #[test]
    fn scratch_page_is_unmapped_after_calibration() {
        let scratch = VirtAddr::new(0x5fff_0000);
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let cal1 = Calibration::run(&mut m, &mut noise, 8);
        assert_eq!(
            m.page_table().flags_of(scratch),
            None,
            "calibration must not leak its scratch mapping"
        );
        // A second calibration on the same machine works and agrees.
        let mut noise = NoiseModel::quiet(0);
        let cal2 = Calibration::run(&mut m, &mut noise, 8);
        assert_eq!(cal1, cal2);
        // The address stays free for the caller to map however it likes.
        m.map_range(scratch, 4096, PageFlags::USER_TEXT).unwrap();
    }

    #[test]
    fn premapped_scratch_page_is_reused_and_kept() {
        let scratch = VirtAddr::new(0x5fff_0000);
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        m.map_range(scratch, 4096, PageFlags::USER_DATA).unwrap();
        let mut noise = NoiseModel::quiet(0);
        Calibration::run(&mut m, &mut noise, 8);
        assert_eq!(
            m.page_table().flags_of(scratch),
            Some(PageFlags::USER_DATA),
            "a caller-owned scratch mapping must survive calibration"
        );
    }

    #[test]
    fn threshold_stays_above_hit_mean_for_near_equal_means() {
        // Pathological hierarchy: a miss costs one cycle more than a
        // hit. The floor-biased midpoint would equal the hit mean and
        // classify every hit as a miss; the clamp keeps the documented
        // `threshold > hit_mean` contract.
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let cfg = phantom_cache::HierarchyConfig {
            l2_latency: 0,
            memory_latency: 1,
            ..*m.caches().config()
        };
        *m.caches_mut() = phantom_cache::CacheHierarchy::new(cfg);
        let mut noise = NoiseModel::quiet(0);
        let cal = Calibration::run(&mut m, &mut noise, 8);
        assert_eq!(cal.hit_mean, 4.0);
        assert_eq!(cal.miss_mean, 5.0);
        assert!(
            (cal.threshold as f64) > cal.hit_mean,
            "threshold {} must exceed hit mean {}",
            cal.threshold,
            cal.hit_mean
        );
    }
}
