//! Timing calibration: where is the line between "cached" and "not"?

use phantom_mem::{PageFlags, VirtAddr};
use phantom_pipeline::Machine;

use crate::flush_reload::{flush, reload};
use crate::noise::NoiseModel;

/// Calibrated hit/miss boundary for timed reloads.
///
/// # Examples
///
/// ```
/// use phantom_pipeline::{Machine, UarchProfile};
/// use phantom_sidechannel::{Calibration, NoiseModel};
///
/// let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
/// let mut noise = NoiseModel::realistic(1);
/// let cal = Calibration::run(&mut m, &mut noise, 64);
/// assert!((cal.threshold as f64) > cal.hit_mean);
/// assert!((cal.threshold as f64) < cal.miss_mean);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Mean measured latency of cached reloads.
    pub hit_mean: f64,
    /// Mean measured latency of uncached reloads.
    pub miss_mean: f64,
    /// The classification threshold (midpoint, floor-biased toward
    /// hits).
    pub threshold: u64,
}

impl Calibration {
    /// Measure `rounds` hit and miss reloads on a scratch page and place
    /// the threshold between the distributions.
    ///
    /// # Panics
    ///
    /// Panics if the scratch page cannot be mapped (machine out of
    /// memory during calibration is a setup bug).
    pub fn run(machine: &mut Machine, noise: &mut NoiseModel, rounds: usize) -> Calibration {
        let scratch = VirtAddr::new(0x5fff_0000);
        machine
            .map_range(scratch, 4096, PageFlags::USER_DATA)
            .expect("calibration scratch page");
        let mut hit_total = 0u64;
        let mut miss_total = 0u64;
        for _ in 0..rounds.max(1) {
            flush(machine, scratch);
            miss_total += reload(machine, scratch, noise);
            hit_total += reload(machine, scratch, noise);
        }
        let n = rounds.max(1) as f64;
        let hit_mean = hit_total as f64 / n;
        let miss_mean = miss_total as f64 / n;
        let threshold = ((hit_mean + miss_mean) / 2.0).floor() as u64;
        Calibration {
            hit_mean,
            miss_mean,
            threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_pipeline::UarchProfile;

    #[test]
    fn distributions_are_separable() {
        let mut m = Machine::new(UarchProfile::zen3(), 1 << 24);
        let mut noise = NoiseModel::realistic(7);
        let cal = Calibration::run(&mut m, &mut noise, 32);
        assert!(cal.miss_mean > cal.hit_mean + 50.0, "{cal:?}");
        assert!((cal.hit_mean as u64) < cal.threshold);
        assert!(cal.threshold < cal.miss_mean as u64);
    }

    #[test]
    fn quiet_noise_matches_configured_latencies() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let mut noise = NoiseModel::quiet(0);
        let cal = Calibration::run(&mut m, &mut noise, 8);
        let cfg = m.caches().config();
        assert_eq!(cal.hit_mean as u64, cfg.l1_latency);
        assert_eq!(
            cal.miss_mean as u64,
            cfg.l1_latency + cfg.l2_latency + cfg.memory_latency
        );
    }
}
