//! Cache side channels on the simulated machine.
//!
//! The paper's observation channels and exploits rest on three classic
//! techniques, implemented here against the simulated hierarchy:
//!
//! * [`PrimeProbe`] — fill a cache set with attacker lines, let the
//!   victim run, re-measure; evictions mean the victim touched the set.
//!   Used on L1I for kernel-image KASLR (§7.1) and on L2 (with 2 MiB
//!   huge pages for physical contiguity) for physmap KASLR (§7.2);
//! * [`flush_reload()`](flush_reload::flush_reload) — flush a shared line, let the victim run, time a
//!   reload; fast means the victim touched it. Used once physmap is
//!   known (§7.4);
//! * [`EvictTime`] — time the victim itself with and without evicting a
//!   set.
//!
//! Timing is the simulator's deterministic latency plus a seeded
//! [`NoiseModel`] (jitter + spurious evictions), so accuracy numbers
//! below 100% arise the same way they do on hardware — from measurement
//! noise — while staying reproducible. The §7.3 noise-overcoming score
//! is in [`score`].
//!
//! # Examples
//!
//! ```
//! use phantom_pipeline::{Machine, UarchProfile};
//! use phantom_sidechannel::{NoiseModel, PrimeProbe};
//! use phantom_mem::VirtAddr;
//!
//! let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
//! let mut noise = NoiseModel::quiet(7);
//! let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 13)?;
//! pp.prime(&mut m)?;
//! let baseline = pp.probe(&mut m, &mut noise)?;
//! assert_eq!(baseline.evictions, 0, "nothing touched the set");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod evict_time;
pub mod flush_reload;
pub mod noise;
pub mod prime_probe;
pub mod reading;
pub mod score;
pub mod threshold;

pub use evict_time::EvictTime;
pub use flush_reload::{flush, flush_reload, flush_reload_scored, reload};
pub use noise::NoiseModel;
pub use prime_probe::{BuildError, PrimeProbe, ProbeArena, ProbeError, ProbeLevel, ProbeResult};
pub use reading::{Confidence, Reading, VoteTally};
pub use score::{bounded_score, SCORE_CLAMP};
pub use threshold::{Calibration, CalibrationError, Recalibrator};

#[cfg(test)]
mod proptests;
