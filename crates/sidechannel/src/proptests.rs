//! Property-based tests for the side channels.

use proptest::prelude::*;

use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel, VirtAddr};
use phantom_pipeline::{Machine, UarchProfile};

use crate::noise::NoiseModel;
use crate::prime_probe::PrimeProbe;
use crate::score::bounded_score;

fn machine() -> Machine {
    Machine::new(UarchProfile::zen2(), 1 << 26)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Prime+Probe soundness under arbitrary victim activity: the probe
    /// detects an eviction if and only if the victim touched the
    /// monitored L1D set with at least one access (noise off).
    #[test]
    fn prime_probe_detects_exactly_set_touches(
        set in 0usize..64,
        victim_sets in proptest::collection::vec(0usize..64, 0..6),
    ) {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m).unwrap();
        // Victim: one access per listed set, distinct lines.
        for (i, &vs) in victim_sets.iter().enumerate() {
            let va = VirtAddr::new(0x6000_0000 + (i as u64) * 0x1000 + (vs as u64) * 64);
            m.map_range(va, 64, PageFlags::USER_DATA).unwrap();
            let pa = m
                .page_table()
                .translate(va, AccessKind::Read, PrivilegeLevel::User)
                .unwrap();
            m.caches_mut().access_data(pa.raw());
        }
        let touched = victim_sets.iter().filter(|&&vs| vs == set).count();
        let r = pp.probe(&mut m, &mut noise).unwrap();
        prop_assert_eq!(r.evictions, touched.min(8), "set {} victims {:?}", set, victim_sets);
    }

    /// Probing is self-restoring: immediately probing again after a
    /// probe reports a clean set (the probe re-primes by touching).
    #[test]
    fn probe_is_self_restoring(set in 0usize..64) {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m).unwrap();
        // Disturb.
        let va = VirtAddr::new(0x6000_0000 + (set as u64) * 64);
        m.map_range(va, 64, PageFlags::USER_DATA).unwrap();
        let pa = m.page_table().translate(va, AccessKind::Read, PrivilegeLevel::User).unwrap();
        m.caches_mut().access_data(pa.raw());
        let first = pp.probe(&mut m, &mut noise).unwrap();
        prop_assert!(first.evictions > 0);
        let second = pp.probe(&mut m, &mut noise).unwrap();
        prop_assert_eq!(second.evictions, 0, "probe restored the set");
    }

    /// The §7.3 score is monotone in the signal: adding cycles to any
    /// probe measurement never lowers the score.
    #[test]
    fn bounded_score_is_monotone(
        baseline in proptest::collection::vec(0u64..500, 1..64),
        bumps in proptest::collection::vec(0u64..50, 1..64),
    ) {
        let n = baseline.len().min(bumps.len());
        let base = &baseline[..n];
        let mut bumped = base.to_vec();
        for (b, d) in bumped.iter_mut().zip(&bumps[..n]) {
            *b += d;
        }
        let s0 = bounded_score(base, base);
        let s1 = bounded_score(&bumped, base);
        prop_assert_eq!(s0, 0, "identical measurements score zero");
        prop_assert!(s1 >= s0);
        // And the clamp bounds it.
        prop_assert!(s1 <= 10 * n as i64);
    }

    /// Noise determinism: two models with the same seed agree on every
    /// decision, regardless of parameters order of use.
    #[test]
    fn noise_streams_are_reproducible(seed in any::<u64>(), queries in 1usize..50) {
        let mut a = NoiseModel::realistic(seed);
        let mut b = NoiseModel::realistic(seed);
        for i in 0..queries {
            prop_assert_eq!(a.jitter(100 + i as u64), b.jitter(100 + i as u64));
            prop_assert_eq!(a.rolls_spurious_evict(), b.rolls_spurious_evict());
            prop_assert_eq!(a.rolls_missed_signal(), b.rolls_missed_signal());
        }
    }
}
