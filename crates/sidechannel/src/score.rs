//! The §7.3 noise-overcoming score.
//!
//! Prime+Probe on the L1I is noisy; the paper repeats the exploit over
//! multiple cache sets, measures each monitored set both with the
//! injected target mapping to it (`T_S`) and with the target mapping to
//! an unrelated set (`B_S`, the baseline), and scores a candidate by the
//! bounded relative timing difference accumulated over all 64 sets:
//!
//! `score = Σ_S min(max(T_S − B_S, −10), 10)`

/// Clamp bound of the per-set contribution (cycles).
pub const SCORE_CLAMP: i64 = 10;

/// The bounded relative-difference score over paired per-set
/// measurements.
///
/// # Panics
///
/// Panics if the two slices differ in length.
///
/// # Examples
///
/// ```
/// use phantom_sidechannel::bounded_score;
/// // One strongly signalling set is clamped to +10; small noise
/// // elsewhere stays small.
/// let probe = [250, 101, 99];
/// let baseline = [100, 100, 100];
/// assert_eq!(bounded_score(&probe, &baseline), 10 + 1 - 1);
/// ```
pub fn bounded_score(probe: &[u64], baseline: &[u64]) -> i64 {
    assert_eq!(probe.len(), baseline.len(), "paired measurements required");
    probe
        .iter()
        .zip(baseline)
        .map(|(&t, &b)| (t as i64 - b as i64).clamp(-SCORE_CLAMP, SCORE_CLAMP))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(bounded_score(&[], &[]), 0);
    }

    #[test]
    fn clamping_limits_outliers_both_ways() {
        // A single huge outlier cannot dominate 64 sets.
        assert_eq!(bounded_score(&[10_000], &[0]), SCORE_CLAMP);
        assert_eq!(bounded_score(&[0], &[10_000]), -SCORE_CLAMP);
    }

    #[test]
    fn signal_across_many_sets_accumulates() {
        let probe: Vec<u64> = (0..64).map(|_| 108).collect();
        let baseline: Vec<u64> = (0..64).map(|_| 100).collect();
        assert_eq!(bounded_score(&probe, &baseline), 64 * 8);
    }

    #[test]
    fn symmetric_noise_cancels() {
        let probe = [105, 95, 103, 97];
        let baseline = [100, 100, 100, 100];
        assert_eq!(bounded_score(&probe, &baseline), 0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn mismatched_lengths_panic() {
        bounded_score(&[1], &[1, 2]);
    }
}
