//! Evict+Time: time the victim itself after evicting a chosen set.

use phantom_mem::VirtAddr;
use phantom_pipeline::Machine;

use crate::noise::NoiseModel;
use crate::prime_probe::{BuildError, PrimeProbe, ProbeError};
use crate::reading::Reading;

/// Evict+Time on the L1D: evict a set, run the victim (a closure over
/// the machine), and compare its cycle cost against a no-eviction
/// baseline. A slower run means the victim used the evicted set.
///
/// # Examples
///
/// ```
/// use phantom_mem::{PageFlags, VirtAddr};
/// use phantom_pipeline::{Machine, UarchProfile};
/// use phantom_sidechannel::{EvictTime, NoiseModel};
///
/// let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
/// let victim_line = VirtAddr::new(0x6000_0000 + 12 * 64);
/// m.map_range(victim_line, 64, PageFlags::USER_DATA)?;
/// let et = EvictTime::new(&mut m, VirtAddr::new(0x5100_0000), 12)?;
/// let mut noise = NoiseModel::quiet(0);
/// let slowdown = et.measure(&mut m, &mut noise, |m| {
///     let pa = m.page_table()
///         .translate(victim_line, phantom_mem::AccessKind::Read, phantom_mem::PrivilegeLevel::User)
///         .unwrap();
///     let (_, lat) = m.caches_mut().access_data(pa.raw());
///     lat
/// })?;
/// assert!(slowdown > 0, "victim touched the evicted set");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct EvictTime {
    eviction_set: PrimeProbe,
}

impl EvictTime {
    /// Build over an L1D set.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the eviction set cannot be mapped.
    pub fn new(
        machine: &mut Machine,
        attacker_base: VirtAddr,
        set: usize,
    ) -> Result<EvictTime, BuildError> {
        Ok(EvictTime {
            eviction_set: PrimeProbe::new_l1d(machine, attacker_base, set)?,
        })
    }

    /// Run `victim` twice — once with the set warm, once after eviction —
    /// and return the cycle slowdown (0 when the victim avoids the set).
    ///
    /// # Errors
    ///
    /// Returns a [`ProbeError`] if an eviction-set page was unmapped
    /// out from under the set (the trial is retryable).
    pub fn measure<F>(
        &self,
        machine: &mut Machine,
        noise: &mut NoiseModel,
        mut victim: F,
    ) -> Result<u64, ProbeError>
    where
        F: FnMut(&mut Machine) -> u64,
    {
        // Warm pass.
        victim(machine);
        let warm = noise.jitter(victim(machine));
        // Evict (prime floods the set with attacker lines) and re-time.
        self.eviction_set.prime(machine)?;
        let cold = noise.jitter(victim(machine));
        Ok(cold.saturating_sub(warm))
    }

    /// [`measure`](Self::measure) as a confidence-scored [`Reading`]:
    /// `hit` means the victim slowed down after eviction, the margin is
    /// the slowdown itself, and confidence normalizes it against the
    /// memory latency (the largest slowdown one evicted line explains).
    ///
    /// # Errors
    ///
    /// Returns a [`ProbeError`] if an eviction-set page was unmapped
    /// out from under the set.
    pub fn measure_scored<F>(
        &self,
        machine: &mut Machine,
        noise: &mut NoiseModel,
        victim: F,
    ) -> Result<Reading, ProbeError>
    where
        F: FnMut(&mut Machine) -> u64,
    {
        let span = machine.caches().config().memory_latency;
        let slowdown = self.measure(machine, noise, victim)?;
        Ok(Reading {
            hit: slowdown > 0,
            cycles: slowdown,
            margin: slowdown,
            confidence: crate::reading::Confidence::from_margin(slowdown, span),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel};
    use phantom_pipeline::UarchProfile;

    #[test]
    fn victim_outside_the_set_shows_no_slowdown() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let victim_line = VirtAddr::new(0x6000_0000 + 20 * 64);
        m.map_range(victim_line, 64, PageFlags::USER_DATA).unwrap();
        let et = EvictTime::new(&mut m, VirtAddr::new(0x5100_0000), 21).unwrap();
        let mut noise = NoiseModel::quiet(0);
        let slowdown = et.measure(&mut m, &mut noise, |m| {
            let pa = m
                .page_table()
                .translate(victim_line, AccessKind::Read, PrivilegeLevel::User)
                .unwrap();
            let (_, lat) = m.caches_mut().access_data(pa.raw());
            lat
        });
        assert_eq!(slowdown.unwrap(), 0);
    }

    #[test]
    fn victim_inside_the_set_shows_slowdown() {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let victim_line = VirtAddr::new(0x6000_0000 + 20 * 64);
        m.map_range(victim_line, 64, PageFlags::USER_DATA).unwrap();
        let et = EvictTime::new(&mut m, VirtAddr::new(0x5100_0000), 20).unwrap();
        let mut noise = NoiseModel::quiet(0);
        let slowdown = et.measure(&mut m, &mut noise, |m| {
            let pa = m
                .page_table()
                .translate(victim_line, AccessKind::Read, PrivilegeLevel::User)
                .unwrap();
            let (_, lat) = m.caches_mut().access_data(pa.raw());
            lat
        });
        assert!(slowdown.unwrap() > 0);
    }
}
