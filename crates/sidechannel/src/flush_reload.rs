//! Flush+Reload on shared memory.
//!
//! Requires the attacker and the measurement target to share a line —
//! in the paper either genuinely shared memory or, crucially, *physmap*:
//! once the attacker knows the physical address of their own page, the
//! kernel's direct-map alias of that page is a shared line they can
//! Flush+Reload while the kernel touches it (§7.4).

use phantom_mem::{AccessKind, PrivilegeLevel, VirtAddr};
use phantom_pipeline::Machine;

use crate::noise::NoiseModel;
use crate::reading::Reading;
use crate::threshold::Calibration;

/// Flush the line holding `va` from the whole hierarchy (`clflush`).
///
/// # Panics
///
/// Panics if `va` is unmapped (an attacker always flushes through a
/// mapping they own).
pub fn flush(machine: &mut Machine, va: VirtAddr) {
    let pa = machine
        .page_table()
        .translate(va, AccessKind::Read, PrivilegeLevel::Supervisor)
        .unwrap_or_else(|e| panic!("flush of unmapped {va}: {e}"));
    machine.caches_mut().flush_line(pa.raw());
    machine.add_cycles(40);
}

/// Timed reload of `va`; returns the measured (jittered) latency.
///
/// # Panics
///
/// Panics if `va` is unmapped.
pub fn reload(machine: &mut Machine, va: VirtAddr, noise: &mut NoiseModel) -> u64 {
    let pa = machine
        .page_table()
        .translate(va, AccessKind::Read, PrivilegeLevel::Supervisor)
        .unwrap_or_else(|e| panic!("reload of unmapped {va}: {e}"));
    let (_, latency) = machine.caches_mut().access_data(pa.raw());
    machine.add_cycles(latency);
    noise.jitter(latency)
}

/// One full Flush+Reload round: reload, classify against `threshold`
/// (cycles), and flush again for the next round. Returns `true` when the
/// line was cached (the victim touched it).
pub fn flush_reload(
    machine: &mut Machine,
    va: VirtAddr,
    threshold: u64,
    noise: &mut NoiseModel,
) -> bool {
    let latency = reload(machine, va, noise);
    flush(machine, va);
    latency <= threshold
}

/// [`flush_reload`] with a confidence-scored [`Reading`]: classifies
/// against the calibration's threshold and normalizes the margin
/// against its hit/miss span, so a reload one cycle under the threshold
/// scores near zero and one a full span away scores 1.
///
/// # Panics
///
/// Panics if `va` is unmapped (as [`flush`]/[`reload`] do).
pub fn flush_reload_scored(
    machine: &mut Machine,
    va: VirtAddr,
    cal: &Calibration,
    noise: &mut NoiseModel,
) -> Reading {
    let latency = reload(machine, va, noise);
    flush(machine, va);
    Reading::classify(latency, cal.threshold, cal.span())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_mem::PageFlags;
    use phantom_pipeline::UarchProfile;

    fn setup() -> (Machine, VirtAddr) {
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let va = VirtAddr::new(0x5000_0000);
        m.map_range(va, 4096, PageFlags::USER_DATA).unwrap();
        (m, va)
    }

    #[test]
    fn untouched_line_reloads_slow() {
        let (mut m, va) = setup();
        let mut noise = NoiseModel::quiet(0);
        flush(&mut m, va);
        let latency = reload(&mut m, va, &mut noise);
        let cfg = m.caches().config();
        assert!(latency >= cfg.memory_latency);
    }

    #[test]
    fn touched_line_reloads_fast() {
        let (mut m, va) = setup();
        let mut noise = NoiseModel::quiet(0);
        flush(&mut m, va);
        // Victim touch.
        let pa = m
            .page_table()
            .translate(va, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        let latency = reload(&mut m, va, &mut noise);
        assert!(latency <= m.caches().config().l1_latency + 1);
    }

    #[test]
    fn flush_reload_classifies_and_rearms() {
        let (mut m, va) = setup();
        let mut noise = NoiseModel::quiet(0);
        let threshold = m.caches().config().l2_latency + m.caches().config().l1_latency;
        flush(&mut m, va);
        assert!(!flush_reload(&mut m, va, threshold, &mut noise));
        let pa = m
            .page_table()
            .translate(va, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        assert!(flush_reload(&mut m, va, threshold, &mut noise));
        // The classification round flushed again: next is slow.
        assert!(!flush_reload(&mut m, va, threshold, &mut noise));
    }

    #[test]
    fn scored_flush_reload_matches_and_grades_the_boolean() {
        let (mut m, va) = setup();
        let mut noise = NoiseModel::quiet(0);
        let cal = Calibration::run(&mut m, &mut noise, 8).unwrap();
        flush(&mut m, va);
        let cold = flush_reload_scored(&mut m, va, &cal, &mut noise);
        assert!(!cold.hit);
        assert!(cold.confidence.value() >= 0.4, "{cold:?}");
        let pa = m
            .page_table()
            .translate(va, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        let warm = flush_reload_scored(&mut m, va, &cal, &mut noise);
        assert!(warm.hit);
        assert!(warm.confidence.value() > 0.0, "{warm:?}");
        assert_eq!(warm.cycles, m.caches().config().l1_latency);
    }

    #[test]
    fn physmap_alias_is_the_same_line() {
        // Two virtual mappings of one physical frame: touching one makes
        // the other reload fast (the §7.4 setup).
        let mut m = Machine::new(UarchProfile::zen2(), 1 << 24);
        let frame = m.phys_mut().alloc_frame().unwrap();
        let user = VirtAddr::new(0x5000_0000);
        let kernel_alias = VirtAddr::new(0xffff_8880_0000_0000);
        m.page_table_mut().map_4k(user, frame, PageFlags::USER_DATA);
        m.page_table_mut()
            .map_4k(kernel_alias, frame, PageFlags::KERNEL_DATA);
        let mut noise = NoiseModel::quiet(0);
        flush(&mut m, user);
        // Kernel touches its alias.
        let pa = m
            .page_table()
            .translate(kernel_alias, AccessKind::Read, PrivilegeLevel::Supervisor)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        let latency = reload(&mut m, user, &mut noise);
        assert!(latency <= m.caches().config().l1_latency);
    }
}
