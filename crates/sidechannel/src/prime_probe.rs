//! Prime+Probe on the L1I, L1D and L2 caches.

use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel, VirtAddr};
use phantom_pipeline::Machine;

use crate::noise::NoiseModel;
use crate::reading::Reading;

/// Which cache a [`PrimeProbe`] instance targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeLevel {
    /// L1 instruction cache (the §7.1 channel).
    L1I,
    /// L1 data cache.
    L1D,
    /// Unified L2 (the §7.2 channel; needs 2 MiB physically contiguous
    /// backing).
    L2,
}

/// Result of one probe pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// Total measured cycles over all ways.
    pub cycles: u64,
    /// How many primed ways were found evicted.
    pub evictions: usize,
}

/// A Prime+Probe eviction set for one cache set.
///
/// Construction maps attacker memory; `prime` fills the target set with
/// attacker lines; `probe` re-touches them, counting evictions by
/// latency. The probe re-primes as a side effect (touching reloads the
/// lines), matching how the loop is used in practice.
#[derive(Debug, Clone)]
pub struct PrimeProbe {
    level: ProbeLevel,
    set: usize,
    lines: Vec<VirtAddr>,
}

/// Error from eviction-set construction.
#[derive(Debug)]
pub struct BuildError(pub String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prime+probe construction failed: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Recoverable error from a prime or probe pass: an eviction-set line
/// became unmeasurable mid-run (the victim workload unmapped its page).
/// The trial that hit it can be retried from fresh state instead of
/// aborting the whole experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeError {
    /// The eviction-set line that could not be measured.
    pub line: VirtAddr,
    /// Why the measurement failed.
    pub reason: String,
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "eviction-set line {} unmeasurable: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ProbeError {}

impl PrimeProbe {
    /// Build an L1I eviction set for `set` using pages at
    /// `attacker_base` (mapped user-executable).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if mapping fails or the set index is out
    /// of range.
    pub fn new_l1i(
        machine: &mut Machine,
        attacker_base: VirtAddr,
        set: usize,
    ) -> Result<PrimeProbe, BuildError> {
        Self::new_l1(machine, attacker_base, set, ProbeLevel::L1I)
    }

    /// Build an L1D eviction set for `set` using pages at
    /// `attacker_base` (mapped user-writable).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if mapping fails or the set index is out
    /// of range.
    pub fn new_l1d(
        machine: &mut Machine,
        attacker_base: VirtAddr,
        set: usize,
    ) -> Result<PrimeProbe, BuildError> {
        Self::new_l1(machine, attacker_base, set, ProbeLevel::L1D)
    }

    fn new_l1(
        machine: &mut Machine,
        attacker_base: VirtAddr,
        set: usize,
        level: ProbeLevel,
    ) -> Result<PrimeProbe, BuildError> {
        let geometry = match level {
            ProbeLevel::L1I => machine.caches().config().l1i,
            ProbeLevel::L1D => machine.caches().config().l1d,
            ProbeLevel::L2 => unreachable!(),
        };
        if set >= geometry.sets {
            return Err(BuildError(format!("set {set} out of range")));
        }
        if !attacker_base.is_aligned(4096) {
            return Err(BuildError("attacker base must be page aligned".into()));
        }
        let flags = match level {
            ProbeLevel::L1I => PageFlags::USER_TEXT,
            _ => PageFlags::USER_DATA,
        };
        // One page per way; the in-page offset selects the set (VIPT:
        // VA bits [11:6] == PA bits [11:6] for 4 KiB pages).
        let mut lines = Vec::with_capacity(geometry.ways);
        let mut mapped_here = Vec::new();
        for way in 0..geometry.ways {
            let page = attacker_base + (way as u64) * 4096;
            let fresh = machine.page_table().flags_of(page).is_none();
            if let Err(e) = machine.map_range(page, 4096, flags) {
                // Unwind the pages *this* construction mapped (and only
                // those — pre-mapped arena pages the loop no-op'd over
                // belong to the caller), so a failed build does not leak
                // a partial probe buffer into the address space.
                for &leaked in &mapped_here {
                    machine.unmap_range(leaked, 4096);
                }
                return Err(BuildError(e.to_string()));
            }
            if fresh {
                mapped_here.push(page);
            }
            lines.push(page + (set as u64) * geometry.line_size as u64);
        }
        Ok(PrimeProbe { level, set, lines })
    }

    /// Build an L2 eviction set for `set` over a 2 MiB huge page at
    /// `huge_base` (mapped user-writable with physically contiguous
    /// backing, like a transparent huge page).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the huge page cannot be allocated.
    pub fn new_l2(
        machine: &mut Machine,
        huge_base: VirtAddr,
        set: usize,
    ) -> Result<PrimeProbe, BuildError> {
        let geometry = machine.caches().config().l2;
        if set >= geometry.sets {
            return Err(BuildError(format!("set {set} out of range")));
        }
        if !huge_base.is_aligned(2 * 1024 * 1024) {
            return Err(BuildError("huge base must be 2 MiB aligned".into()));
        }
        if machine
            .page_table()
            .translate(huge_base, AccessKind::Read, PrivilegeLevel::User)
            .is_err()
        {
            let frame = machine
                .phys_mut()
                .alloc_huge()
                .map_err(|e| BuildError(e.to_string()))?;
            machine
                .page_table_mut()
                .map_2m(huge_base, frame, PageFlags::USER_DATA);
        }
        // Lines with the same L2 set repeat every sets*line bytes of
        // physical address; a 2 MiB huge page gives the attacker control
        // of PA bits [20:0], enough for ways * stride.
        let stride = (geometry.sets * geometry.line_size) as u64;
        if stride * geometry.ways as u64 > 2 * 1024 * 1024 {
            return Err(BuildError("L2 too large for one huge page".into()));
        }
        let lines = (0..geometry.ways)
            .map(|w| huge_base + w as u64 * stride + (set as u64) * geometry.line_size as u64)
            .collect();
        Ok(PrimeProbe {
            level: ProbeLevel::L2,
            set,
            lines,
        })
    }

    /// The targeted cache.
    pub fn level(&self) -> ProbeLevel {
        self.level
    }

    /// The targeted set index.
    pub fn set(&self) -> usize {
        self.set
    }

    /// The eviction-set line addresses.
    pub fn lines(&self) -> &[VirtAddr] {
        &self.lines
    }

    fn touch(&self, machine: &mut Machine, va: VirtAddr) -> Result<u64, ProbeError> {
        let pa = machine
            .page_table()
            .translate(va, AccessKind::Read, PrivilegeLevel::User)
            .map_err(|e| ProbeError {
                line: va,
                reason: e.to_string(),
            })?;
        let (_, latency) = match self.level {
            ProbeLevel::L1I => machine.caches_mut().access_inst(pa.raw()),
            ProbeLevel::L1D | ProbeLevel::L2 => machine.caches_mut().access_data(pa.raw()),
        };
        machine.add_cycles(latency);
        Ok(latency)
    }

    /// Fill the set with attacker lines.
    ///
    /// # Errors
    ///
    /// Returns a [`ProbeError`] if an eviction-set page was unmapped
    /// out from under the set (the trial is retryable from fresh
    /// state).
    pub fn prime(&self, machine: &mut Machine) -> Result<(), ProbeError> {
        // Two passes settle LRU state.
        for _ in 0..2 {
            for &line in &self.lines {
                self.touch(machine, line)?;
            }
        }
        Ok(())
    }

    /// Measure: re-touch every line, classifying each as evicted when
    /// its (jittered) latency exceeds the L1/L2 hit boundary.
    ///
    /// # Errors
    ///
    /// Returns a [`ProbeError`] if an eviction-set page was unmapped
    /// mid-run — recoverable, so the runner can retry the trial instead
    /// of crashing.
    pub fn probe(
        &self,
        machine: &mut Machine,
        noise: &mut NoiseModel,
    ) -> Result<ProbeResult, ProbeError> {
        Ok(self.probe_scored(machine, noise)?.0)
    }

    /// [`probe`](Self::probe), plus a confidence-scored [`Reading`] for
    /// the whole pass: `hit` means at least one eviction, the margin is
    /// the *weakest* per-line distance from the hit boundary, and the
    /// confidence normalizes that margin against the next cache level's
    /// latency (the calibrated gap between "still resident" and
    /// "refilled from below").
    ///
    /// # Errors
    ///
    /// Returns a [`ProbeError`] if an eviction-set page was unmapped
    /// mid-run.
    pub fn probe_scored(
        &self,
        machine: &mut Machine,
        noise: &mut NoiseModel,
    ) -> Result<(ProbeResult, Reading), ProbeError> {
        let cfg = *machine.caches().config();
        let (hit_threshold, span) = match self.level {
            // An evicted L1 line refills from L2: the hit/miss gap is
            // the L2 latency.
            ProbeLevel::L1I | ProbeLevel::L1D => {
                (cfg.l1_latency + noise.jitter_cycles, cfg.l2_latency)
            }
            // Probing L2: a resident line costs at most an L1 miss + L2
            // hit; anything above that came from memory.
            ProbeLevel::L2 => (
                cfg.l1_latency + cfg.l2_latency + noise.jitter_cycles,
                cfg.memory_latency,
            ),
        };
        let mut cycles = 0;
        let mut evictions = 0;
        let mut min_margin = u64::MAX;
        // Probe in reverse traversal order: under LRU, probing in prime
        // order cascades (each refill evicts the next line to probe and a
        // single victim access reads as a whole-set eviction). Reverse
        // traversal refreshes surviving lines before reaching the victim
        // slot, so exactly the displaced ways read as misses.
        for &line in self.lines.iter().rev() {
            // Noise: spurious pre-probe eviction of this way.
            if noise.rolls_spurious_evict() {
                let pa = machine
                    .page_table()
                    .translate(line, AccessKind::Read, PrivilegeLevel::User)
                    .map_err(|e| ProbeError {
                        line,
                        reason: e.to_string(),
                    })?;
                machine.caches_mut().flush_line(pa.raw());
            }
            let mut latency = noise.jitter(self.touch(machine, line)?);
            // Noise: a genuinely evicted way re-fetched before the probe
            // (prefetcher interference) reads back as a hit. The roll is
            // conditional on an eviction so quiet streams are untouched.
            if latency > hit_threshold && noise.rolls_missed_signal() {
                latency = hit_threshold;
            }
            cycles += latency;
            let margin = if latency > hit_threshold {
                evictions += 1;
                latency - hit_threshold
            } else {
                // A surviving line's distance from the eviction class:
                // how far below a refill-from-below it measured.
                (hit_threshold + span).saturating_sub(latency)
            };
            min_margin = min_margin.min(margin);
        }
        let result = ProbeResult { cycles, evictions };
        let reading = Reading {
            hit: evictions > 0,
            cycles,
            margin: if min_margin == u64::MAX {
                0
            } else {
                min_margin
            },
            confidence: crate::reading::Confidence::from_margin(
                if min_margin == u64::MAX {
                    0
                } else {
                    min_margin
                },
                span,
            ),
        };
        Ok((result, reading))
    }
}

/// A persistent probe arena: the attacker pages an L1 eviction set
/// lives in, mapped **once** (typically before a checkpoint is taken)
/// and re-armed in place every trial.
///
/// [`PrimeProbe::new_l1i`]/[`new_l1d`](PrimeProbe::new_l1d) walk
/// `map_range` over every way page on each construction; with the
/// arena's pages already mapped those walks are pure no-ops, so
/// [`arm`](ProbeArena::arm) skips them entirely and just lays the
/// eviction set out over the standing mapping. Because `map_range` over
/// an identically-flagged mapped page charges no cycles, bumps no
/// page-table version and allocates no frame, an armed probe is
/// byte-identical to a freshly constructed one — the arena removes host
/// work only.
///
/// The descriptor is `Copy`: it holds addresses and geometry, never
/// machine state, so it can ride in a config struct across forks while
/// the mapping itself lives in the (checkpointed) machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeArena {
    level: ProbeLevel,
    base: VirtAddr,
    ways: usize,
    sets: usize,
    line_size: usize,
}

impl ProbeArena {
    /// Map the arena for `level` at `base` (one page per way, same
    /// flags as the corresponding `PrimeProbe` constructor) and return
    /// its descriptor. Install before checkpointing so every fork
    /// inherits the standing mapping.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if `base` is unaligned or mapping fails;
    /// a failed install unwinds the pages it mapped.
    pub fn install(
        machine: &mut Machine,
        base: VirtAddr,
        level: ProbeLevel,
    ) -> Result<ProbeArena, BuildError> {
        let geometry = match level {
            ProbeLevel::L1I => machine.caches().config().l1i,
            ProbeLevel::L1D => machine.caches().config().l1d,
            ProbeLevel::L2 => {
                return Err(BuildError("L2 probes use huge pages, not arenas".into()))
            }
        };
        // Building set 0 maps exactly the arena pages (and unwinds them
        // if anything fails); the probe handle itself is discarded.
        PrimeProbe::new_l1(machine, base, 0, level)?;
        Ok(ProbeArena {
            level,
            base,
            ways: geometry.ways,
            sets: geometry.sets,
            line_size: geometry.line_size,
        })
    }

    /// The cache the arena's eviction sets target.
    pub fn level(&self) -> ProbeLevel {
        self.level
    }

    /// The arena's base address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Re-arm: lay out the eviction set for `set` over the standing
    /// mapping, without touching the page table. Counts one re-arm on
    /// the machine's `probe_rearms` instrumentation counter.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if `set` is out of range or an arena page
    /// is no longer mapped (the arena must be re-installed — e.g. after
    /// rewinding past its install point).
    pub fn arm(&self, machine: &mut Machine, set: usize) -> Result<PrimeProbe, BuildError> {
        if set >= self.sets {
            return Err(BuildError(format!("set {set} out of range")));
        }
        let mut lines = Vec::with_capacity(self.ways);
        for way in 0..self.ways {
            let page = self.base + (way as u64) * 4096;
            if machine.page_table().flags_of(page).is_none() {
                return Err(BuildError(format!(
                    "arena page {page} is not mapped (arena not installed?)"
                )));
            }
            lines.push(page + (set as u64) * self.line_size as u64);
        }
        machine.count_probe_rearm();
        Ok(PrimeProbe {
            level: self.level,
            set,
            lines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_pipeline::UarchProfile;

    fn machine() -> Machine {
        Machine::new(UarchProfile::zen2(), 1 << 26)
    }

    #[test]
    fn unprobed_set_reports_no_evictions() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 5).unwrap();
        pp.prime(&mut m).unwrap();
        let r = pp.probe(&mut m, &mut noise).unwrap();
        assert_eq!(r.evictions, 0);
    }

    #[test]
    fn victim_access_to_the_set_is_detected() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 9;
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m).unwrap();
        // "Victim": one access mapping to the same L1D set.
        let victim = VirtAddr::new(0x6000_0000 + set as u64 * 64);
        m.map_range(victim, 64, PageFlags::USER_DATA).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        let r = pp.probe(&mut m, &mut noise).unwrap();
        assert_eq!(r.evictions, 1);
    }

    #[test]
    fn other_sets_are_unaffected() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 9).unwrap();
        pp.prime(&mut m).unwrap();
        // Victim touches a different set.
        let victim = VirtAddr::new(0x6000_0000 + 10 * 64);
        m.map_range(victim, 64, PageFlags::USER_DATA).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut noise).unwrap().evictions, 0);
    }

    #[test]
    fn l1i_channel_sees_instruction_fetches() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 43; // page offset 43*64 = 0xac0, the paper's favourite
        let pp = PrimeProbe::new_l1i(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m).unwrap();
        let victim = VirtAddr::new(0x6000_0ac0);
        m.map_range(victim, 64, PageFlags::USER_TEXT).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Execute, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_inst(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut noise).unwrap().evictions, 1);
        // Data accesses to the same line do NOT evict L1I ways.
        pp.prime(&mut m).unwrap();
        m.caches_mut().access_data(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut noise).unwrap().evictions, 0);
    }

    #[test]
    fn l2_channel_detects_misses_through_hugepage_sets() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 700;
        let pp = PrimeProbe::new_l2(&mut m, VirtAddr::new(0x4000_0000), set).unwrap();
        pp.prime(&mut m).unwrap();
        assert_eq!(pp.probe(&mut m, &mut noise).unwrap().evictions, 0);
        // Victim: 8 distinct-tag L2 accesses to the same set (enough to
        // evict at least one attacker way from the 8-way set).
        let g2 = m.caches().config().l2;
        for i in 0..8u64 {
            let pa = g2.compose(0x4_0000 + i, set);
            m.caches_mut().access_data(pa);
        }
        pp.prime(&mut m).unwrap(); // reset
        for i in 8..16u64 {
            let pa = g2.compose(0x4_0000 + i, set);
            m.caches_mut().access_data(pa);
        }
        let r = pp.probe(&mut m, &mut noise).unwrap();
        assert!(r.evictions > 0, "victim L2 pressure visible");
    }

    #[test]
    fn noise_produces_false_positives_at_the_configured_rate() {
        let mut m = machine();
        let mut noise = NoiseModel::realistic(3);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 2).unwrap();
        let mut false_pos = 0;
        let rounds = 300;
        for _ in 0..rounds {
            pp.prime(&mut m).unwrap();
            if pp.probe(&mut m, &mut noise).unwrap().evictions > 0 {
                false_pos += 1;
            }
        }
        assert!(false_pos > 0, "some spurious evictions expected");
        assert!(false_pos < rounds / 2, "but not a majority: {false_pos}");
    }

    #[test]
    fn unmapped_line_is_a_recoverable_error_not_a_panic() {
        // Regression: the victim unmapping an eviction-set page mid-run
        // used to abort the whole trial via `.expect(...)`.
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let base = VirtAddr::new(0x5000_0000);
        let pp = PrimeProbe::new_l1d(&mut m, base, 5).unwrap();
        pp.prime(&mut m).unwrap();
        // "Victim workload" unmaps one of the attacker's pages.
        m.unmap_range(base, 4096);
        let err = pp.probe(&mut m, &mut noise).unwrap_err();
        assert_eq!(err.line, base + 5 * 64);
        assert!(pp.prime(&mut m).is_err(), "prime surfaces it too");
        // Remapping recovers: the set can be rebuilt and probed again.
        let pp = PrimeProbe::new_l1d(&mut m, base, 5).unwrap();
        pp.prime(&mut m).unwrap();
        assert_eq!(pp.probe(&mut m, &mut noise).unwrap().evictions, 0);
    }

    #[test]
    fn scored_probe_matches_probe_and_scores_margins() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 9;
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m).unwrap();
        // Quiet, untouched set: full-confidence "no signal".
        let (r, reading) = pp.probe_scored(&mut m, &mut noise).unwrap();
        assert_eq!(r.evictions, 0);
        assert!(!reading.hit);
        assert_eq!(reading.cycles, r.cycles);
        let cfg = *m.caches().config();
        assert_eq!(reading.margin, cfg.l2_latency, "survivor margin = L2 gap");
        assert_eq!(reading.confidence, crate::reading::Confidence::FULL);
        // A victim touch: the eviction reads with full confidence too
        // (an L2 refill sits a whole L2 latency past the hit boundary).
        pp.prime(&mut m).unwrap();
        let victim = VirtAddr::new(0x6000_0000 + set as u64 * 64);
        m.map_range(victim, 64, PageFlags::USER_DATA).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        let (r, reading) = pp.probe_scored(&mut m, &mut noise).unwrap();
        assert_eq!(r.evictions, 1);
        assert!(reading.hit);
        assert!(reading.margin > 0);
    }

    #[test]
    fn missed_signal_hides_real_evictions_at_the_configured_rate() {
        // The missed-signal knob must actually suppress detections: with
        // the rate at 1.0 every real eviction reads back as a hit.
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        noise.missed_signal = 1.0;
        let set = 9;
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m).unwrap();
        let victim = VirtAddr::new(0x6000_0000 + set as u64 * 64);
        m.map_range(victim, 64, PageFlags::USER_DATA).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        let r = pp.probe(&mut m, &mut noise).unwrap();
        assert_eq!(r.evictions, 0, "missed signal hides the eviction");
        // And with the knob off the same setup detects it.
        let mut quiet = NoiseModel::quiet(0);
        pp.prime(&mut m).unwrap();
        m.caches_mut().access_data(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut quiet).unwrap().evictions, 1);
    }

    #[test]
    fn build_errors_on_bad_inputs() {
        let mut m = machine();
        assert!(PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 999).is_err());
        assert!(PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0001), 0).is_err());
        assert!(PrimeProbe::new_l2(&mut m, VirtAddr::new(0x1000), 0).is_err());
    }

    #[test]
    fn failed_build_unmaps_its_partial_probe_buffer() {
        // Regression: a mid-construction `map_range` failure used to
        // leave the already-mapped way pages behind.
        let mut m = machine();
        let base = VirtAddr::new(0x5000_0000);
        // Poison way 3 with conflicting flags so the build fails there.
        m.map_range(base + 3 * 4096, 4096, PageFlags::USER_DATA)
            .unwrap();
        assert!(PrimeProbe::new_l1i(&mut m, base, 5).is_err());
        for way in 0..3u64 {
            assert!(
                m.page_table().flags_of(base + way * 4096).is_none(),
                "way {way} page leaked by the failed build"
            );
        }
        // The page the build did not create is untouched.
        assert_eq!(
            m.page_table().flags_of(base + 3 * 4096),
            Some(PageFlags::USER_DATA)
        );
    }

    #[test]
    fn failed_build_keeps_preexisting_mappings() {
        // Pages that were already mapped compatibly (an installed
        // arena, say) belong to the caller: the unwind must not touch
        // them.
        let mut m = machine();
        let base = VirtAddr::new(0x5000_0000);
        m.map_range(base, 2 * 4096, PageFlags::USER_TEXT).unwrap();
        m.map_range(base + 3 * 4096, 4096, PageFlags::USER_DATA)
            .unwrap();
        assert!(PrimeProbe::new_l1i(&mut m, base, 5).is_err());
        for way in 0..2u64 {
            assert_eq!(
                m.page_table().flags_of(base + way * 4096),
                Some(PageFlags::USER_TEXT),
                "pre-existing way {way} page must survive the unwind"
            );
        }
        assert!(m.page_table().flags_of(base + 2 * 4096).is_none());
    }

    #[test]
    fn armed_probe_equals_a_fresh_construction() {
        let mut fresh = machine();
        let mut arena_m = machine();
        let base = VirtAddr::new(0x5000_0000);
        let arena = ProbeArena::install(&mut arena_m, base, ProbeLevel::L1I).unwrap();
        for set in [0usize, 9, 43] {
            let a = PrimeProbe::new_l1i(&mut fresh, base, set).unwrap();
            let b = arena.arm(&mut arena_m, set).unwrap();
            assert_eq!(a.level(), b.level());
            assert_eq!(a.set(), b.set());
            assert_eq!(a.lines(), b.lines());
        }
        assert_eq!(arena_m.probe_rearms(), 3);
        assert_eq!(fresh.probe_rearms(), 0);
    }

    #[test]
    fn armed_probe_detects_the_victim_like_a_fresh_one() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 9;
        let arena =
            ProbeArena::install(&mut m, VirtAddr::new(0x5000_0000), ProbeLevel::L1D).unwrap();
        let pp = arena.arm(&mut m, set).unwrap();
        pp.prime(&mut m).unwrap();
        let victim = VirtAddr::new(0x6000_0000 + set as u64 * 64);
        m.map_range(victim, 64, PageFlags::USER_DATA).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut noise).unwrap().evictions, 1);
    }

    #[test]
    fn arm_requires_the_standing_mapping() {
        let mut m = machine();
        let base = VirtAddr::new(0x5000_0000);
        let arena = ProbeArena::install(&mut m, base, ProbeLevel::L1D).unwrap();
        assert!(arena.arm(&mut m, 999).is_err(), "set out of range");
        m.unmap_range(base, 4096);
        assert!(arena.arm(&mut m, 0).is_err(), "arena page gone");
        // Arenas survive checkpoint rewinds taken after the install.
        let mut m = machine();
        let arena = ProbeArena::install(&mut m, base, ProbeLevel::L1D).unwrap();
        let snap = m.checkpoint();
        snap.rewind(&mut m);
        assert!(arena.arm(&mut m, 0).is_ok());
    }

    #[test]
    fn arena_rejects_l2() {
        let mut m = machine();
        assert!(ProbeArena::install(&mut m, VirtAddr::new(0x4000_0000), ProbeLevel::L2).is_err());
    }
}
