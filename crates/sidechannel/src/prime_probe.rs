//! Prime+Probe on the L1I, L1D and L2 caches.

use phantom_mem::{AccessKind, PageFlags, PrivilegeLevel, VirtAddr};
use phantom_pipeline::Machine;

use crate::noise::NoiseModel;

/// Which cache a [`PrimeProbe`] instance targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeLevel {
    /// L1 instruction cache (the §7.1 channel).
    L1I,
    /// L1 data cache.
    L1D,
    /// Unified L2 (the §7.2 channel; needs 2 MiB physically contiguous
    /// backing).
    L2,
}

/// Result of one probe pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// Total measured cycles over all ways.
    pub cycles: u64,
    /// How many primed ways were found evicted.
    pub evictions: usize,
}

/// A Prime+Probe eviction set for one cache set.
///
/// Construction maps attacker memory; `prime` fills the target set with
/// attacker lines; `probe` re-touches them, counting evictions by
/// latency. The probe re-primes as a side effect (touching reloads the
/// lines), matching how the loop is used in practice.
#[derive(Debug, Clone)]
pub struct PrimeProbe {
    level: ProbeLevel,
    set: usize,
    lines: Vec<VirtAddr>,
}

/// Error from eviction-set construction.
#[derive(Debug)]
pub struct BuildError(pub String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prime+probe construction failed: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

impl PrimeProbe {
    /// Build an L1I eviction set for `set` using pages at
    /// `attacker_base` (mapped user-executable).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if mapping fails or the set index is out
    /// of range.
    pub fn new_l1i(
        machine: &mut Machine,
        attacker_base: VirtAddr,
        set: usize,
    ) -> Result<PrimeProbe, BuildError> {
        Self::new_l1(machine, attacker_base, set, ProbeLevel::L1I)
    }

    /// Build an L1D eviction set for `set` using pages at
    /// `attacker_base` (mapped user-writable).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if mapping fails or the set index is out
    /// of range.
    pub fn new_l1d(
        machine: &mut Machine,
        attacker_base: VirtAddr,
        set: usize,
    ) -> Result<PrimeProbe, BuildError> {
        Self::new_l1(machine, attacker_base, set, ProbeLevel::L1D)
    }

    fn new_l1(
        machine: &mut Machine,
        attacker_base: VirtAddr,
        set: usize,
        level: ProbeLevel,
    ) -> Result<PrimeProbe, BuildError> {
        let geometry = match level {
            ProbeLevel::L1I => machine.caches().config().l1i,
            ProbeLevel::L1D => machine.caches().config().l1d,
            ProbeLevel::L2 => unreachable!(),
        };
        if set >= geometry.sets {
            return Err(BuildError(format!("set {set} out of range")));
        }
        if !attacker_base.is_aligned(4096) {
            return Err(BuildError("attacker base must be page aligned".into()));
        }
        let flags = match level {
            ProbeLevel::L1I => PageFlags::USER_TEXT,
            _ => PageFlags::USER_DATA,
        };
        // One page per way; the in-page offset selects the set (VIPT:
        // VA bits [11:6] == PA bits [11:6] for 4 KiB pages).
        let mut lines = Vec::with_capacity(geometry.ways);
        for way in 0..geometry.ways {
            let page = attacker_base + (way as u64) * 4096;
            machine
                .map_range(page, 4096, flags)
                .map_err(|e| BuildError(e.to_string()))?;
            lines.push(page + (set as u64) * geometry.line_size as u64);
        }
        Ok(PrimeProbe { level, set, lines })
    }

    /// Build an L2 eviction set for `set` over a 2 MiB huge page at
    /// `huge_base` (mapped user-writable with physically contiguous
    /// backing, like a transparent huge page).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the huge page cannot be allocated.
    pub fn new_l2(
        machine: &mut Machine,
        huge_base: VirtAddr,
        set: usize,
    ) -> Result<PrimeProbe, BuildError> {
        let geometry = machine.caches().config().l2;
        if set >= geometry.sets {
            return Err(BuildError(format!("set {set} out of range")));
        }
        if !huge_base.is_aligned(2 * 1024 * 1024) {
            return Err(BuildError("huge base must be 2 MiB aligned".into()));
        }
        if machine
            .page_table()
            .translate(huge_base, AccessKind::Read, PrivilegeLevel::User)
            .is_err()
        {
            let frame = machine
                .phys_mut()
                .alloc_huge()
                .map_err(|e| BuildError(e.to_string()))?;
            machine
                .page_table_mut()
                .map_2m(huge_base, frame, PageFlags::USER_DATA);
        }
        // Lines with the same L2 set repeat every sets*line bytes of
        // physical address; a 2 MiB huge page gives the attacker control
        // of PA bits [20:0], enough for ways * stride.
        let stride = (geometry.sets * geometry.line_size) as u64;
        if stride * geometry.ways as u64 > 2 * 1024 * 1024 {
            return Err(BuildError("L2 too large for one huge page".into()));
        }
        let lines = (0..geometry.ways)
            .map(|w| huge_base + w as u64 * stride + (set as u64) * geometry.line_size as u64)
            .collect();
        Ok(PrimeProbe {
            level: ProbeLevel::L2,
            set,
            lines,
        })
    }

    /// The targeted cache.
    pub fn level(&self) -> ProbeLevel {
        self.level
    }

    /// The targeted set index.
    pub fn set(&self) -> usize {
        self.set
    }

    /// The eviction-set line addresses.
    pub fn lines(&self) -> &[VirtAddr] {
        &self.lines
    }

    fn touch(&self, machine: &mut Machine, va: VirtAddr) -> u64 {
        let pa = machine
            .page_table()
            .translate(va, AccessKind::Read, PrivilegeLevel::User)
            .expect("eviction set stays mapped");
        let (_, latency) = match self.level {
            ProbeLevel::L1I => machine.caches_mut().access_inst(pa.raw()),
            ProbeLevel::L1D | ProbeLevel::L2 => machine.caches_mut().access_data(pa.raw()),
        };
        machine.add_cycles(latency);
        latency
    }

    /// Fill the set with attacker lines.
    pub fn prime(&self, machine: &mut Machine) {
        // Two passes settle LRU state.
        for _ in 0..2 {
            for &line in &self.lines {
                self.touch(machine, line);
            }
        }
    }

    /// Measure: re-touch every line, classifying each as evicted when
    /// its (jittered) latency exceeds the L1/L2 hit boundary.
    pub fn probe(&self, machine: &mut Machine, noise: &mut NoiseModel) -> ProbeResult {
        let cfg = *machine.caches().config();
        let hit_threshold = match self.level {
            ProbeLevel::L1I | ProbeLevel::L1D => cfg.l1_latency + noise.jitter_cycles,
            // Probing L2: a resident line costs at most an L1 miss + L2
            // hit; anything above that came from memory.
            ProbeLevel::L2 => cfg.l1_latency + cfg.l2_latency + noise.jitter_cycles,
        };
        let mut cycles = 0;
        let mut evictions = 0;
        // Probe in reverse traversal order: under LRU, probing in prime
        // order cascades (each refill evicts the next line to probe and a
        // single victim access reads as a whole-set eviction). Reverse
        // traversal refreshes surviving lines before reaching the victim
        // slot, so exactly the displaced ways read as misses.
        for &line in self.lines.iter().rev() {
            // Noise: spurious pre-probe eviction of this way.
            if noise.rolls_spurious_evict() {
                let pa = machine
                    .page_table()
                    .translate(line, AccessKind::Read, PrivilegeLevel::User)
                    .expect("mapped");
                machine.caches_mut().flush_line(pa.raw());
            }
            let latency = noise.jitter(self.touch(machine, line));
            cycles += latency;
            if latency > hit_threshold {
                evictions += 1;
            }
        }
        ProbeResult { cycles, evictions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_pipeline::UarchProfile;

    fn machine() -> Machine {
        Machine::new(UarchProfile::zen2(), 1 << 26)
    }

    #[test]
    fn unprobed_set_reports_no_evictions() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 5).unwrap();
        pp.prime(&mut m);
        let r = pp.probe(&mut m, &mut noise);
        assert_eq!(r.evictions, 0);
    }

    #[test]
    fn victim_access_to_the_set_is_detected() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 9;
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m);
        // "Victim": one access mapping to the same L1D set.
        let victim = VirtAddr::new(0x6000_0000 + set as u64 * 64);
        m.map_range(victim, 64, PageFlags::USER_DATA).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        let r = pp.probe(&mut m, &mut noise);
        assert_eq!(r.evictions, 1);
    }

    #[test]
    fn other_sets_are_unaffected() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 9).unwrap();
        pp.prime(&mut m);
        // Victim touches a different set.
        let victim = VirtAddr::new(0x6000_0000 + 10 * 64);
        m.map_range(victim, 64, PageFlags::USER_DATA).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Read, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_data(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut noise).evictions, 0);
    }

    #[test]
    fn l1i_channel_sees_instruction_fetches() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 43; // page offset 43*64 = 0xac0, the paper's favourite
        let pp = PrimeProbe::new_l1i(&mut m, VirtAddr::new(0x5000_0000), set).unwrap();
        pp.prime(&mut m);
        let victim = VirtAddr::new(0x6000_0ac0);
        m.map_range(victim, 64, PageFlags::USER_TEXT).unwrap();
        let pa = m
            .page_table()
            .translate(victim, AccessKind::Execute, PrivilegeLevel::User)
            .unwrap();
        m.caches_mut().access_inst(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut noise).evictions, 1);
        // Data accesses to the same line do NOT evict L1I ways.
        pp.prime(&mut m);
        m.caches_mut().access_data(pa.raw());
        assert_eq!(pp.probe(&mut m, &mut noise).evictions, 0);
    }

    #[test]
    fn l2_channel_detects_misses_through_hugepage_sets() {
        let mut m = machine();
        let mut noise = NoiseModel::quiet(0);
        let set = 700;
        let pp = PrimeProbe::new_l2(&mut m, VirtAddr::new(0x4000_0000), set).unwrap();
        pp.prime(&mut m);
        assert_eq!(pp.probe(&mut m, &mut noise).evictions, 0);
        // Victim: 8 distinct-tag L2 accesses to the same set (enough to
        // evict at least one attacker way from the 8-way set).
        let g2 = m.caches().config().l2;
        for i in 0..8u64 {
            let pa = g2.compose(0x4_0000 + i, set);
            m.caches_mut().access_data(pa);
        }
        pp.prime(&mut m); // reset
        for i in 8..16u64 {
            let pa = g2.compose(0x4_0000 + i, set);
            m.caches_mut().access_data(pa);
        }
        let r = pp.probe(&mut m, &mut noise);
        assert!(r.evictions > 0, "victim L2 pressure visible");
    }

    #[test]
    fn noise_produces_false_positives_at_the_configured_rate() {
        let mut m = machine();
        let mut noise = NoiseModel::realistic(3);
        let pp = PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 2).unwrap();
        let mut false_pos = 0;
        let rounds = 300;
        for _ in 0..rounds {
            pp.prime(&mut m);
            if pp.probe(&mut m, &mut noise).evictions > 0 {
                false_pos += 1;
            }
        }
        assert!(false_pos > 0, "some spurious evictions expected");
        assert!(false_pos < rounds / 2, "but not a majority: {false_pos}");
    }

    #[test]
    fn build_errors_on_bad_inputs() {
        let mut m = machine();
        assert!(PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0000), 999).is_err());
        assert!(PrimeProbe::new_l1d(&mut m, VirtAddr::new(0x5000_0001), 0).is_err());
        assert!(PrimeProbe::new_l2(&mut m, VirtAddr::new(0x1000), 0).is_err());
    }
}
