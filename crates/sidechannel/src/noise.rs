//! The measurement noise model.
//!
//! The simulator itself is deterministic; real measurements are not.
//! Sub-100% accuracies in the paper's Tables 2–5 come from timing
//! jitter, replacement-policy interference and syscall cache thrash
//! (§7.3 discusses how noisy L1I Prime+Probe is). We reintroduce those
//! effects with a seeded model so experiments are noisy *and*
//! reproducible. The paper's `stress -c 10` sibling-thread trick is the
//! `smt_stress` knob: it stabilizes the victim's timing, modeled as
//! reduced spurious-eviction probability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded measurement noise.
///
/// # Examples
///
/// ```
/// use phantom_sidechannel::NoiseModel;
/// let mut n = NoiseModel::realistic(1);
/// let jittered = n.jitter(100);
/// assert!(jittered > 0);
/// ```
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rng: StdRng,
    /// Standard-deviation-ish amplitude of timing jitter in cycles
    /// (uniform ±amplitude).
    pub jitter_cycles: u64,
    /// Probability that a primed way is spuriously evicted before the
    /// probe (replacement interference, syscall thrash).
    pub spurious_evict: f64,
    /// Probability that a genuinely evicted way is re-fetched before the
    /// probe (prefetcher interference) — a missed signal.
    pub missed_signal: f64,
}

impl NoiseModel {
    /// No noise at all (unit tests of mechanism).
    pub fn quiet(seed: u64) -> NoiseModel {
        NoiseModel {
            rng: StdRng::seed_from_u64(seed),
            jitter_cycles: 0,
            spurious_evict: 0.0,
            missed_signal: 0.0,
        }
    }

    /// Hardware-flavored defaults: a few cycles of jitter, occasional
    /// spurious evictions and missed signals.
    pub fn realistic(seed: u64) -> NoiseModel {
        NoiseModel {
            rng: StdRng::seed_from_u64(seed),
            jitter_cycles: 3,
            spurious_evict: 0.03,
            missed_signal: 0.02,
        }
    }

    /// Realistic noise with the paper's sibling-thread stress workload
    /// applied (§6.4 footnote: `stress -c 10` improves accuracy).
    pub fn with_smt_stress(seed: u64) -> NoiseModel {
        NoiseModel {
            rng: StdRng::seed_from_u64(seed),
            jitter_cycles: 2,
            spurious_evict: 0.01,
            missed_signal: 0.01,
        }
    }

    /// The same noise parameters with a fresh RNG stream. Sharded trial
    /// runners use this to give every trial an independent, per-trial
    /// noise stream while keeping the model's calibration knobs.
    pub fn reseeded(&self, seed: u64) -> NoiseModel {
        NoiseModel {
            rng: StdRng::seed_from_u64(seed),
            ..self.clone()
        }
    }

    /// Apply jitter to a latency measurement.
    pub fn jitter(&mut self, latency: u64) -> u64 {
        if self.jitter_cycles == 0 {
            return latency;
        }
        let amp = self.jitter_cycles as i64;
        let delta = self.rng.gen_range(-amp..=amp);
        latency.saturating_add_signed(delta)
    }

    /// Roll for a spurious pre-probe eviction.
    pub fn rolls_spurious_evict(&mut self) -> bool {
        self.spurious_evict > 0.0 && self.rng.gen_bool(self.spurious_evict)
    }

    /// Roll for a missed signal (victim effect hidden).
    pub fn rolls_missed_signal(&mut self) -> bool {
        self.missed_signal > 0.0 && self.rng.gen_bool(self.missed_signal)
    }

    /// A random value in `[0, n)` from the model's RNG (tie-breaking,
    /// workload randomization). `pick(0)` returns 0 — an empty choice
    /// has exactly one outcome — rather than panicking on the empty
    /// range `0..0`.
    pub fn pick(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_is_deterministic_identity() {
        let mut n = NoiseModel::quiet(0);
        assert_eq!(n.jitter(42), 42);
        assert!(!n.rolls_spurious_evict());
        assert!(!n.rolls_missed_signal());
    }

    #[test]
    fn jitter_stays_bounded() {
        let mut n = NoiseModel::realistic(1);
        for _ in 0..1000 {
            let j = n.jitter(100);
            assert!((97..=103).contains(&j), "{j}");
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = NoiseModel::realistic(5);
        let mut b = NoiseModel::realistic(5);
        for _ in 0..100 {
            assert_eq!(a.jitter(50), b.jitter(50));
            assert_eq!(a.rolls_spurious_evict(), b.rolls_spurious_evict());
        }
    }

    #[test]
    fn stress_reduces_spurious_evictions() {
        let normal = NoiseModel::realistic(0);
        let stressed = NoiseModel::with_smt_stress(0);
        assert!(stressed.spurious_evict < normal.spurious_evict);
    }

    #[test]
    fn reseeding_keeps_knobs_and_replaces_the_stream() {
        let mut a = NoiseModel::realistic(1);
        let mut b = a.reseeded(1);
        assert_eq!(a.spurious_evict, b.spurious_evict);
        assert_eq!(a.jitter_cycles, b.jitter_cycles);
        for _ in 0..50 {
            assert_eq!(a.jitter(50), b.jitter(50), "same seed, same stream");
        }
        let mut c = NoiseModel::realistic(1);
        let mut d = c.reseeded(2);
        let diverges = (0..50).any(|_| c.jitter(50) != d.jitter(50));
        assert!(diverges, "a different seed yields a different stream");
    }

    #[test]
    fn pick_zero_returns_zero_instead_of_panicking() {
        // Regression: `pick(0)` used to hit `gen_range(0..0)`, an empty
        // range, and panic inside rand.
        let mut n = NoiseModel::realistic(9);
        assert_eq!(n.pick(0), 0);
        // The RNG stream is untouched by the degenerate call: a model
        // that never called pick(0) stays in lockstep.
        let mut twin = NoiseModel::realistic(9);
        assert_eq!(n.pick(8), twin.pick(8));
        assert_eq!(n.jitter(50), twin.jitter(50));
        // And normal picks stay in range.
        for bound in [1u64, 2, 7, 100] {
            assert!(n.pick(bound) < bound);
        }
    }

    #[test]
    fn spurious_rate_is_roughly_calibrated() {
        let mut n = NoiseModel::realistic(2);
        let hits = (0..10_000).filter(|_| n.rolls_spurious_evict()).count();
        assert!(
            (150..=450).contains(&hits),
            "~3% expected, got {hits}/10000"
        );
    }
}
