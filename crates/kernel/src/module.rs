//! The loadable kernel module: the MDS gadget of Listing 4, a
//! P3-style disclosure gadget, the reverse-engineering probe target, and
//! the planted secret the §7.4 attack leaks.

use phantom_isa::asm::{AsmError, Assembler, Blob};
use phantom_isa::inst::AluOp;
use phantom_isa::{Cond, Inst, Reg};
use phantom_mem::VirtAddr;

use crate::sysno;

/// Where the module is loaded (module space; not KASLR-randomized in
/// this model — the paper's §7.4 likewise assumes the gadget address is
/// known from the previous attack stages).
pub const MODULE_BASE: u64 = 0xffff_ffff_c000_0000;
/// Length of the in-bounds `array` (u64 entries).
pub const ARRAY_LEN: u64 = 16;
/// Number of secret bytes planted after the array.
pub const SECRET_LEN: usize = 4096;

/// Addresses inside a loaded module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelModule {
    /// Module base address.
    pub base: VirtAddr,
    /// Module syscall entry (dispatches `read_data` / `probe`).
    pub entry: VirtAddr,
    /// The `read_data` MDS gadget (Listing 4): a bounds check that can
    /// mispredict taken, followed by a single attacker-indexed load and
    /// a direct `call parse_data`.
    pub read_data: VirtAddr,
    /// The direct `call parse_data` instruction inside `read_data` — the
    /// inner injection point for the nested-phantom leak.
    pub parse_call: VirtAddr,
    /// A disclosure gadget that cache-encodes the loaded byte:
    /// `and r3, 0xff; shl r3, 6; add r3, r2; mov r9, [r3]; ret`.
    pub disclosure_gadget: VirtAddr,
    /// The P3 gadget: cache-encodes the low byte of the live `R12`.
    pub p3_gadget: VirtAddr,
    /// The nops-plus-return probe function (reverse-engineering target
    /// K from §6.2).
    pub probe_fn: VirtAddr,
    /// Base of the in-bounds `array`.
    pub array: VirtAddr,
    /// Address of the `array_length` variable.
    pub array_length: VirtAddr,
    /// Base of the planted secret (what the attack must leak).
    pub secret: VirtAddr,
}

impl KernelModule {
    /// Assemble the module text (data cells are part of the same blob and
    /// the system maps them writable).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on layout bugs.
    pub fn build(base: VirtAddr) -> Result<(Blob, KernelModule), AsmError> {
        let mut a = Assembler::new(base.raw());

        // --- Dispatcher: R0 selects the module function. --------------
        a.label("entry");
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: sysno::MODULE_READ_DATA,
        });
        a.push(Inst::Cmp {
            a: Reg::R0,
            b: Reg::R7,
        });
        a.jcc_cond(Cond::Eq, "read_data");
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: sysno::MODULE_PROBE,
        });
        a.push(Inst::Cmp {
            a: Reg::R0,
            b: Reg::R7,
        });
        a.jcc_cond(Cond::Eq, "probe_fn");
        a.push(Inst::Sysret);

        // --- Listing 4: read_data(user_index = R1). --------------------
        //   void read_data(uint64_t user_index) {
        //     if (user_index < *array_length) {
        //       uint8_t data = array[user_index];
        //       parse_data(data);
        //     }
        //   }
        a.label("read_data");
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: 0,
        }); // patched: &array_length
        a.label("read_data_len_imm");
        a.push(Inst::Load {
            dst: Reg::R5,
            base: Reg::R7,
            disp: 0,
        }); // *array_length
        a.push(Inst::Cmp {
            a: Reg::R1,
            b: Reg::R5,
        });
        a.jcc_cond(Cond::Below, "in_bounds");
        a.push(Inst::Sysret);
        a.label("in_bounds");
        a.push(Inst::MovImm {
            dst: Reg::R4,
            imm: 0,
        }); // patched: &array
        a.label("read_data_array_imm");
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R4,
            src: Reg::R1,
        });
        a.push(Inst::Load {
            dst: Reg::R3,
            base: Reg::R4,
            disp: 0,
        }); // the ONE load
        a.label("parse_call");
        a.call("parse_data"); // <- nested-phantom injection point
        a.push(Inst::Sysret);
        a.label("parse_data");
        a.push(Inst::NopN { len: 3 });
        a.push(Inst::Ret);

        // --- Disclosure gadget (cache-encodes R3 into [R2 + byte<<6]). -
        a.label("disclosure_gadget");
        a.push(Inst::AndImm {
            dst: Reg::R3,
            imm: 0xff,
        });
        a.push(Inst::Shl {
            dst: Reg::R3,
            amount: 6,
        });
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R3,
            src: Reg::R2,
        });
        a.push(Inst::Load {
            dst: Reg::R9,
            base: Reg::R3,
            disp: 0,
        });
        a.push(Inst::Ret);

        // --- P3 gadget: cache-encode the low byte of the victim's live
        // R12 into [R1 + byte<<6] ("G filters out a single byte from the
        // register and arranges it to reside in bits [13:6]", §6.1). R1
        // holds the first syscall argument (the attacker's reload-buffer
        // pointer) throughout the readv path.
        a.label("p3_gadget");
        a.push(Inst::MovReg {
            dst: Reg::R3,
            src: Reg::R12,
        });
        a.push(Inst::AndImm {
            dst: Reg::R3,
            imm: 0xff,
        });
        a.push(Inst::Shl {
            dst: Reg::R3,
            amount: 6,
        });
        a.push(Inst::Alu {
            op: AluOp::Add,
            dst: Reg::R3,
            src: Reg::R1,
        });
        a.push(Inst::Load {
            dst: Reg::R9,
            base: Reg::R3,
            disp: 0,
        });
        a.push(Inst::Ret);

        // --- §6.2 probe target: nops followed by a return. -------------
        a.org(base.raw() + 0x1ac0); // a recognizable page offset
        a.label("probe_fn");
        a.nops(8);
        a.push(Inst::Sysret);

        // --- Data: array_length, array, secret. -------------------------
        a.org(base.raw() + 0x3000);
        a.label("array_length");
        a.bytes(ARRAY_LEN.to_le_bytes().to_vec());
        a.label("array");
        let mut array_bytes = Vec::new();
        for i in 0..ARRAY_LEN {
            array_bytes.extend_from_slice(&(i * 0x11).to_le_bytes());
        }
        a.bytes(array_bytes);
        a.label("secret");
        // Placeholder zeros; the system plants the real (random) secret.
        a.bytes(vec![0u8; SECRET_LEN]);

        let mut blob = a.finish()?;

        // Patch the two address immediates now that labels are resolved.
        let patch_imm = |blob: &mut Blob, imm_end_label: &str, value: u64| {
            // The MovImm ends at the label; its 8-byte immediate is the
            // last 8 bytes before it.
            let end = (blob.addr(imm_end_label) - blob.base) as usize;
            blob.bytes[end - 8..end].copy_from_slice(&value.to_le_bytes());
        };
        let array_length = blob.addr("array_length");
        let array = blob.addr("array");
        patch_imm(&mut blob, "read_data_len_imm", array_length);
        patch_imm(&mut blob, "read_data_array_imm", array);

        let module = KernelModule {
            base,
            entry: VirtAddr::new(blob.addr("entry")),
            read_data: VirtAddr::new(blob.addr("read_data")),
            parse_call: VirtAddr::new(blob.addr("parse_call")),
            disclosure_gadget: VirtAddr::new(blob.addr("disclosure_gadget")),
            p3_gadget: VirtAddr::new(blob.addr("p3_gadget")),
            probe_fn: VirtAddr::new(blob.addr("probe_fn")),
            array: VirtAddr::new(array),
            array_length: VirtAddr::new(array_length),
            secret: VirtAddr::new(blob.addr("secret")),
        };
        Ok((blob, module))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_isa::decode::decode;

    fn build() -> (Blob, KernelModule) {
        KernelModule::build(VirtAddr::new(MODULE_BASE)).expect("module assembles")
    }

    #[test]
    fn layout_is_coherent() {
        let (blob, m) = build();
        assert!(m.read_data > m.entry);
        assert!(m.array_length.raw() - blob.base == 0x3000);
        assert_eq!(m.array - m.array_length, 8);
        assert_eq!(m.secret - m.array, ARRAY_LEN * 8);
        assert_eq!(m.probe_fn.raw() & 0xfff, 0xac0);
    }

    #[test]
    fn parse_call_is_a_direct_call_to_parse_data() {
        let (blob, m) = build();
        let off = (m.parse_call - m.base) as usize;
        let (inst, _) = decode(&blob.bytes[off..]).unwrap();
        assert!(matches!(inst, Inst::Call { .. }));
        assert_eq!(
            inst.direct_target(m.parse_call.raw()).unwrap(),
            blob.addr("parse_data")
        );
    }

    #[test]
    fn address_immediates_are_patched() {
        let (blob, m) = build();
        // Find the MovImm before read_data_len_imm and decode it.
        let end = (blob.addr("read_data_len_imm") - blob.base) as usize;
        let (inst, _) = decode(&blob.bytes[end - 10..]).unwrap();
        assert_eq!(
            inst,
            Inst::MovImm {
                dst: Reg::R7,
                imm: m.array_length.raw()
            }
        );
        let end = (blob.addr("read_data_array_imm") - blob.base) as usize;
        let (inst, _) = decode(&blob.bytes[end - 10..]).unwrap();
        assert_eq!(
            inst,
            Inst::MovImm {
                dst: Reg::R4,
                imm: m.array.raw()
            }
        );
    }

    #[test]
    fn array_contents_are_deterministic() {
        let (blob, m) = build();
        let off = (m.array - m.base) as usize;
        let first = u64::from_le_bytes(blob.bytes[off..off + 8].try_into().unwrap());
        let second = u64::from_le_bytes(blob.bytes[off + 8..off + 16].try_into().unwrap());
        assert_eq!(first, 0);
        assert_eq!(second, 0x11);
    }

    #[test]
    fn disclosure_gadget_shape() {
        let (blob, m) = build();
        let off = (m.disclosure_gadget - m.base) as usize;
        let insts = phantom_isa::decode::decode_all(&blob.bytes[off..off + 20]);
        assert_eq!(
            insts[0].1,
            Inst::AndImm {
                dst: Reg::R3,
                imm: 0xff
            }
        );
        assert_eq!(
            insts[1].1,
            Inst::Shl {
                dst: Reg::R3,
                amount: 6
            }
        );
    }
}
