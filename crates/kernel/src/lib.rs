//! A simulated Linux kernel for the Phantom exploits.
//!
//! The paper's end-to-end attacks (§7) run against Linux 5.19 on real
//! AMD parts; this crate substitutes a minimal kernel built on the
//! [`phantom_pipeline::Machine`]:
//!
//! * **KASLR layout** ([`layout`]) — the kernel image occupies one of
//!   488 slots, physmap one of 25 600 (counts from the paper's §7.1/§7.2
//!   citing TagBleed);
//! * **kernel image** ([`image`]) — a syscall dispatcher plus the exact
//!   gadget shapes of the paper's Listings 1–3 at their published image
//!   offsets: the `getpid()` nop at `0xf6520`, the `__fdget_pos()` call
//!   site at `0x41db60`, and the one-load disclosure gadget at
//!   `0x41da52`;
//! * **kernel module** ([`module`]) — the MDS gadget of Listing 4 and
//!   the nops-plus-return probe target used for BTB reverse engineering;
//! * **system wrapper** ([`system`]) — wires the machine, maps physmap
//!   (non-executable direct map of physical memory), provides syscall
//!   invocation from a user stub and the user-to-kernel BTB training
//!   helper (branch, fault, catch).
//!
//! # Examples
//!
//! ```
//! use phantom_kernel::System;
//! use phantom_pipeline::UarchProfile;
//!
//! let mut sys = System::new(UarchProfile::zen3(), 1 << 30, 42)?;
//! sys.getpid()?;
//! assert_eq!(sys.machine().reg(phantom_isa::Reg::R1), phantom_kernel::image::FAKE_PID);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod boot_cache;
pub mod image;
pub mod layout;
pub mod module;
pub mod system;

pub use boot_cache::{BootCache, BootTemplate};
pub use image::KernelImage;
pub use layout::KaslrLayout;
pub use module::KernelModule;
pub use system::{System, SystemError};

/// Syscall numbers (Linux x86-64 values where they exist).
pub mod sysno {
    /// `getpid()` — executes the Listing 1 path.
    pub const GETPID: u64 = 39;
    /// `readv(fd, iov, iovcnt)` — executes the Listing 2 path with the
    /// second argument flowing into `R12`.
    pub const READV: u64 = 19;
    /// The kernel module's `read_data(user_index, reload_hint)` ioctl
    /// (Listing 4).
    pub const MODULE_READ_DATA: u64 = 1000;
    /// Invoke the kernel module's nops-plus-return probe function (the
    /// reverse-engineering target K of §6.2).
    pub const MODULE_PROBE: u64 = 1001;
}

#[cfg(test)]
mod proptests;
