//! Property-based tests for the simulated kernel.

use proptest::prelude::*;

use phantom_isa::decode::decode;
use phantom_isa::Inst;
use phantom_mem::VirtAddr;

use crate::image::{KernelImage, LISTING1_OFFSET, LISTING2_CALL_OFFSET, LISTING3_OFFSET};
use crate::layout::{KaslrLayout, KERNEL_IMAGE_SLOTS, PHYSMAP_SLOTS};
use crate::module::{KernelModule, MODULE_BASE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every KASLR slot yields a well-formed image: the paper's gadgets
    /// decode at their published offsets regardless of the base.
    #[test]
    fn gadget_offsets_survive_any_rebase(slot in 0u64..KERNEL_IMAGE_SLOTS) {
        let base = KaslrLayout::candidate_image_base(slot);
        let (blob, img) = KernelImage::build(base, VirtAddr::new(MODULE_BASE)).unwrap();
        prop_assert_eq!(img.base, base);
        // Listing 1: a 5-byte nop.
        let (i1, _) = decode(&blob.bytes[LISTING1_OFFSET as usize..]).unwrap();
        prop_assert_eq!(i1, Inst::NopN { len: 5 });
        // Listing 2 call site: a direct call.
        let (i2, _) = decode(&blob.bytes[LISTING2_CALL_OFFSET as usize..]).unwrap();
        let is_call = matches!(i2, Inst::Call { .. });
        prop_assert!(is_call);
        // Listing 3: the one-load gadget.
        let (i3, _) = decode(&blob.bytes[LISTING3_OFFSET as usize..]).unwrap();
        let is_load = matches!(i3, Inst::Load { .. });
        prop_assert!(is_load);
    }

    /// Layout randomization stays in range and bases never collide
    /// across the two randomized regions.
    #[test]
    fn layouts_are_in_range_and_disjoint(seed in any::<u64>()) {
        let l = KaslrLayout::randomize(seed);
        prop_assert!(l.image_slot < KERNEL_IMAGE_SLOTS);
        prop_assert!(l.physmap_slot < PHYSMAP_SLOTS);
        let image = l.image_base().raw();
        let physmap = l.physmap_base().raw();
        // Physmap lives far below the image range in the kernel half.
        prop_assert!(physmap < image);
        prop_assert!(physmap + (1 << 30) < image, "regions disjoint");
    }

    /// The module blob is position-consistent: labels land inside the
    /// blob and the patched immediates point at the data cells.
    #[test]
    fn module_immediates_point_at_data(_x in 0u8..1) {
        let (blob, m) = KernelModule::build(VirtAddr::new(MODULE_BASE)).unwrap();
        prop_assert!(m.array_length.raw() >= blob.base);
        prop_assert!((m.secret.raw() - blob.base) < blob.bytes.len() as u64);
        // The length cell holds ARRAY_LEN.
        let off = (m.array_length.raw() - blob.base) as usize;
        let len = u64::from_le_bytes(blob.bytes[off..off + 8].try_into().unwrap());
        prop_assert_eq!(len, crate::module::ARRAY_LEN);
    }
}
