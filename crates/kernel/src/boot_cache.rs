//! Boot-image cache: stamp out booted systems without re-running boot.
//!
//! A campaign boots one [`System`] per job — same microarchitecture,
//! same physical-memory size, different KASLR seed — and the boot
//! itself (machine construction, kernel assembly, blob loading, the
//! physmap walk) dominates short jobs. But everything a boot produces
//! is seed-independent *except* three things: where KASLR placed the
//! image and physmap, and the planted secret bytes. So boot once per
//! `(profile, phys_bytes)` into an immortal **template** at a canonical
//! layout, and per seed:
//!
//! 1. clone the template machine (frames stay `Arc`-shared
//!    copy-on-write with the template, so this is pointer bumps);
//! 2. rebase the image's 4 KiB and the physmap's 2 MiB page-table
//!    entries from the canonical bases to the seed's randomized bases
//!    (same frames, same flags — see
//!    [`PageTable::rebase_4k_range`](phantom_mem::PageTable::rebase_4k_range));
//! 3. re-plant the seed's secret and re-point the syscall entry.
//!
//! The result is observationally identical to [`System::new`] with the
//! same seed: the image blob is position-independent (its branches are
//! `rel32`; the only absolute immediate targets the unrandomized
//! module), physical frame allocation order is deterministic so every
//! VA translates to the same PA either way, and the template is never
//! executed, so its caches, TLB, predictors and cycle counter are as
//! cold as a fresh boot's. `boot_matches_a_fresh_boot` checks this
//! end-to-end; the campaign determinism suite pins it at the
//! trial-output level.
//!
//! The cache is process-global behind [`System::new_cached`] and can be
//! disabled with `PHANTOM_BOOT_CACHE=0`; per-instance [`BootCache`]
//! values serve tests and counter plumbing that need isolation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_mem::{HUGE_PAGE_SIZE, PAGE_SIZE};
use phantom_pipeline::UarchProfile;

use crate::layout::KaslrLayout;
use crate::module::SECRET_LEN;
use crate::system::{System, SystemError};

/// One canonical boot, cloned and rebased per seed.
///
/// The template system is booted at [`KaslrLayout::fixed`]`(0, 0)` and
/// never executed; [`BootTemplate::instantiate`] clones it per seed.
#[derive(Debug)]
pub struct BootTemplate {
    system: System,
    /// 4 KiB pages the image blob occupies at the canonical base.
    image_pages: u64,
    /// 2 MiB physmap entries (physical capacity / huge-page size).
    physmap_entries: u64,
}

impl BootTemplate {
    /// Boot the canonical template for one `(profile, phys_bytes)`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the underlying boot fails.
    pub fn new(profile: UarchProfile, phys_bytes: u64) -> Result<BootTemplate, SystemError> {
        // The template's own seed is irrelevant: everything
        // seed-dependent is replaced at instantiation.
        let system = System::with_layout(profile, phys_bytes, 0, KaslrLayout::fixed(0, 0))?;
        let image_base = system.layout().image_base();
        let mut image_pages = 0;
        while system
            .machine()
            .page_table()
            .flags_of(image_base + image_pages * PAGE_SIZE)
            .is_some()
        {
            image_pages += 1;
        }
        let physmap_entries = system.machine().phys().capacity() / HUGE_PAGE_SIZE;
        Ok(BootTemplate {
            system,
            image_pages,
            physmap_entries,
        })
    }

    /// Stamp out a system for `seed`, observationally identical to
    /// `System::new(profile, phys_bytes, seed)`.
    ///
    /// Infallible: the canonical boot already did everything that can
    /// fail, and rebasing moves existing mappings.
    pub fn instantiate(&self, seed: u64) -> System {
        let layout = KaslrLayout::randomize(seed);
        let canonical = self.system.layout();
        let mut machine = self.system.machine().clone();
        machine.page_table_mut().rebase_4k_range(
            canonical.image_base(),
            layout.image_base(),
            self.image_pages,
        );
        machine.page_table_mut().rebase_2m_range(
            canonical.physmap_base(),
            layout.physmap_base(),
            self.physmap_entries,
        );
        let image = self.system.image().rebased(layout.image_base());
        machine.set_syscall_entry(Some(image.entry));
        // Re-plant the seed's secret (module space is unrandomized, so
        // the address is the template's; the write CoW-unshares the
        // frame from the template).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ec7e7);
        let secret: Vec<u8> = (0..SECRET_LEN).map(|_| rng.gen()).collect();
        machine.poke(self.system.module().secret, &secret);
        System::assemble(machine, layout, image, *self.system.module(), secret, seed)
    }
}

struct CacheEntry {
    profile: UarchProfile,
    phys_bytes: u64,
    template: Arc<BootTemplate>,
}

/// A set of boot templates keyed by `(profile, phys_bytes)`, with hit
/// accounting.
///
/// [`System::new_cached`] goes through the process-global instance;
/// constructing a private one isolates the hit counters (the bench
/// snapshot references do this to stay deterministic).
#[derive(Default)]
pub struct BootCache {
    templates: Mutex<Vec<CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for BootCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BootCache")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl BootCache {
    /// An empty cache.
    pub fn new() -> BootCache {
        BootCache::default()
    }

    /// Boot a system for `seed`, building the `(profile, phys_bytes)`
    /// template on first use and cloning it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the template boot fails.
    pub fn boot(
        &self,
        profile: UarchProfile,
        phys_bytes: u64,
        seed: u64,
    ) -> Result<System, SystemError> {
        Ok(self.template_for(profile, phys_bytes)?.instantiate(seed))
    }

    /// Boots served from an existing template.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Boots that had to build a template first.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn template_for(
        &self,
        profile: UarchProfile,
        phys_bytes: u64,
    ) -> Result<Arc<BootTemplate>, SystemError> {
        let mut templates = self.templates.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = templates
            .iter()
            .find(|e| e.phys_bytes == phys_bytes && e.profile == profile)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.template));
        }
        // Build under the lock: workers racing on a cold key wait for
        // one boot instead of each paying their own.
        let template = Arc::new(BootTemplate::new(profile.clone(), phys_bytes)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        templates.push(CacheEntry {
            profile,
            phys_bytes,
            template: Arc::clone(&template),
        });
        Ok(template)
    }
}

/// The process-global cache behind [`System::new_cached`].
pub fn global() -> &'static BootCache {
    static GLOBAL: OnceLock<BootCache> = OnceLock::new();
    GLOBAL.get_or_init(BootCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sysno;
    use phantom_isa::Reg;
    use phantom_mem::PrivilegeLevel;

    const PHYS: u64 = 1 << 26;

    #[test]
    fn boot_matches_a_fresh_boot() {
        let cache = BootCache::new();
        for seed in [11u64, 0xc0de, 7_777_777] {
            let mut fresh = System::new(UarchProfile::zen2(), PHYS, seed).unwrap();
            let mut cached = cache.boot(UarchProfile::zen2(), PHYS, seed).unwrap();

            // Ground truth matches.
            assert_eq!(cached.layout(), fresh.layout(), "seed {seed}");
            assert_eq!(cached.image(), fresh.image());
            assert_eq!(cached.module(), fresh.module());
            assert_eq!(cached.secret(), fresh.secret());
            assert_eq!(cached.boot_seed(), fresh.boot_seed());

            // Same bytes behind the randomized mappings.
            let probe_points = [
                fresh.image().entry,
                fresh.image().listing1_nop,
                fresh.image().listing3_gadget,
                fresh.module().secret,
                fresh.layout().physmap_base(),
            ];
            for va in probe_points {
                assert_eq!(
                    cached.machine().peek(va, 32),
                    fresh.machine().peek(va, 32),
                    "bytes at {va} (seed {seed})"
                );
            }
            // Same physical placement (frame allocation order is
            // deterministic, and rebasing preserves frames).
            for va in probe_points {
                let translate = |m: &phantom_pipeline::Machine| {
                    m.page_table()
                        .translate(
                            va,
                            phantom_mem::AccessKind::Read,
                            PrivilegeLevel::Supervisor,
                        )
                        .unwrap()
                };
                assert_eq!(translate(cached.machine()), translate(fresh.machine()));
            }

            // The canonical-base mappings are gone, not duplicated.
            let canonical = KaslrLayout::fixed(0, 0);
            if fresh.layout().image_slot != 0 {
                assert!(cached
                    .machine()
                    .page_table()
                    .flags_of(canonical.image_base())
                    .is_none());
            }
            assert_eq!(
                cached.machine().page_table().len(),
                fresh.machine().page_table().len()
            );

            // Identical behavior and timing.
            assert_eq!(cached.machine().cycles(), fresh.machine().cycles());
            cached.getpid().unwrap();
            fresh.getpid().unwrap();
            assert_eq!(cached.machine().reg(Reg::R1), fresh.machine().reg(Reg::R1));
            assert_eq!(cached.machine().cycles(), fresh.machine().cycles());
            cached.syscall(sysno::MODULE_READ_DATA, &[8, 0]).unwrap();
            fresh.syscall(sysno::MODULE_READ_DATA, &[8, 0]).unwrap();
            assert_eq!(cached.machine().reg(Reg::R3), fresh.machine().reg(Reg::R3));
            assert_eq!(cached.machine().cycles(), fresh.machine().cycles());
        }
    }

    #[test]
    fn instantiations_do_not_disturb_each_other_or_the_template() {
        let cache = BootCache::new();
        let mut a = cache.boot(UarchProfile::zen2(), PHYS, 21).unwrap();
        let mut b = cache.boot(UarchProfile::zen2(), PHYS, 22).unwrap();
        // Writes through one instance's physmap stay private to it.
        // (High physical address: below capacity, above every blob the
        // boot loads, so untouched instances read zeroes there.)
        let pa = 0x300_4242u64;
        let a_slot = a.layout().physmap_base() + pa;
        a.machine_mut().poke_u64(a_slot, 0x1111);
        let b_slot = b.layout().physmap_base() + pa;
        b.machine_mut().poke_u64(b_slot, 0x2222);
        assert_eq!(
            a.machine().phys().read_u64(phantom_mem::PhysAddr::new(pa)),
            0x1111
        );
        assert_eq!(
            b.machine().phys().read_u64(phantom_mem::PhysAddr::new(pa)),
            0x2222
        );
        // And a third instantiation still sees pristine memory.
        let c = cache.boot(UarchProfile::zen2(), PHYS, 23).unwrap();
        assert_eq!(
            c.machine().phys().read_u64(phantom_mem::PhysAddr::new(pa)),
            0
        );
    }

    #[test]
    fn hits_and_misses_count_template_reuse() {
        let cache = BootCache::new();
        cache.boot(UarchProfile::zen2(), PHYS, 1).unwrap();
        cache.boot(UarchProfile::zen2(), PHYS, 2).unwrap();
        cache.boot(UarchProfile::zen2(), PHYS, 3).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (1, 2));
        // A different phys size (or profile) is a different template.
        cache.boot(UarchProfile::zen2(), PHYS * 2, 4).unwrap();
        cache.boot(UarchProfile::zen3(), PHYS, 5).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (3, 2));
        cache.boot(UarchProfile::zen3(), PHYS, 6).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (3, 3));
    }

    #[test]
    fn new_cached_goes_through_the_global_cache() {
        // Can't assert on the global counters (other tests share them);
        // assert the observable contract instead.
        let mut a = System::new_cached(UarchProfile::zen4(), PHYS, 404).unwrap();
        let mut b = System::new(UarchProfile::zen4(), PHYS, 404).unwrap();
        assert_eq!(a.layout(), b.layout());
        assert_eq!(a.secret(), b.secret());
        a.getpid().unwrap();
        b.getpid().unwrap();
        assert_eq!(a.machine().cycles(), b.machine().cycles());
    }
}
