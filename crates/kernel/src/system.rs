//! The full simulated system: kernel + user space on one machine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_bpu::MsrState;
use phantom_isa::asm::Assembler;
use phantom_isa::{BranchKind, Inst, Reg};
use phantom_mem::{PageFlags, PrivilegeLevel, VirtAddr, HUGE_PAGE_SIZE, PAGE_SIZE};
use phantom_pipeline::{Machine, TransientReport, UarchProfile};

use crate::image::KernelImage;
use crate::layout::KaslrLayout;
use crate::module::{KernelModule, MODULE_BASE, SECRET_LEN};
use crate::sysno;

/// Address of the user-mode syscall stub (`syscall; hlt`).
pub const USER_STUB: u64 = 0x10_0000;
/// Address of the user-mode fault handler (`hlt`).
pub const USER_FAULT_HANDLER: u64 = 0x11_0000;
/// Base of the user stack region.
pub const USER_STACK_BASE: u64 = 0x7f00_0000;
/// Size of the user stack region.
pub const USER_STACK_SIZE: u64 = 0x4000;

/// Errors from system construction or syscall invocation.
#[derive(Debug)]
pub enum SystemError {
    /// Assembly of a kernel component failed (layout bug).
    Asm(phantom_isa::asm::AsmError),
    /// The underlying machine errored.
    Machine(phantom_pipeline::machine::MachineError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Asm(e) => write!(f, "kernel assembly failed: {e}"),
            SystemError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<phantom_isa::asm::AsmError> for SystemError {
    fn from(e: phantom_isa::asm::AsmError) -> Self {
        SystemError::Asm(e)
    }
}

impl From<phantom_pipeline::machine::MachineError> for SystemError {
    fn from(e: phantom_pipeline::machine::MachineError) -> Self {
        SystemError::Machine(e)
    }
}

/// A booted system: randomized kernel, loaded module, user runtime.
///
/// The struct exposes the ground-truth layout for *verification*;
/// attack code must derive addresses through the side channels, not read
/// them here (the attack implementations in the `phantom` crate only
/// consult ground truth to score their own guesses).
///
/// # Examples
///
/// ```
/// use phantom_kernel::{sysno, System};
/// use phantom_pipeline::UarchProfile;
///
/// let mut sys = System::new(UarchProfile::zen2(), 1 << 30, 1)?;
/// sys.getpid()?;
/// assert_eq!(sys.machine().reg(phantom_isa::Reg::R1), phantom_kernel::image::FAKE_PID);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
/// Cloning a system clones the whole booted world — machine state and
/// ground truth — sharing physical frames copy-on-write with the
/// original (and, like any machine clone, carrying no event sinks).
/// Checkpoint-forking trial runners clone one booted system per worker
/// instead of re-running the boot sequence.
#[derive(Debug, Clone)]
pub struct System {
    machine: Machine,
    layout: KaslrLayout,
    image: KernelImage,
    module: KernelModule,
    secret: Vec<u8>,
    boot_seed: u64,
    kpti: bool,
}

impl System {
    /// Boot a system with KASLR randomized from `seed` and all supported
    /// hardware mitigations enabled (the paper's threat model: a default
    /// hardened configuration).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if kernel assembly or loading fails.
    pub fn new(profile: UarchProfile, phys_bytes: u64, seed: u64) -> Result<System, SystemError> {
        Self::with_layout(profile, phys_bytes, seed, KaslrLayout::randomize(seed))
    }

    /// Boot with an explicit layout (tests needing fixed addresses).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if kernel assembly or loading fails.
    pub fn with_layout(
        profile: UarchProfile,
        phys_bytes: u64,
        seed: u64,
        layout: KaslrLayout,
    ) -> Result<System, SystemError> {
        let mut machine = Machine::new(profile, phys_bytes);

        // Default-hardened MSRs (clamped to hardware support).
        let is_intel = machine.profile().vendor == phantom_pipeline::Vendor::Intel;
        machine.write_msr(MsrState::hardened(
            machine.profile().supports_suppress_bp_on_non_br,
            machine.profile().supports_auto_ibrs,
            is_intel,
        ));

        // Kernel module first (the image's trampoline needs its entry).
        let (module_blob, module) = KernelModule::build(VirtAddr::new(MODULE_BASE))?;
        let (image_blob, image) = KernelImage::build(layout.image_base(), module.entry)?;

        machine
            .load_blob(&image_blob, PageFlags::KERNEL_TEXT)
            .map_err(SystemError::Machine)?;
        machine
            .load_blob(&module_blob, PageFlags::KERNEL_TEXT | PageFlags::WRITE)
            .map_err(SystemError::Machine)?;
        machine.set_syscall_entry(Some(image.entry));

        // Plant the secret the §7.4 attack must leak.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ec7e7);
        let secret: Vec<u8> = (0..SECRET_LEN).map(|_| rng.gen()).collect();
        machine.poke(module.secret, &secret);

        // Physmap: a non-executable direct map of physical memory at the
        // randomized base, in 2 MiB huge pages.
        let physmap = layout.physmap_base();
        let mut off = 0;
        while off < machine.phys().capacity() {
            machine.page_table_mut().map_2m(
                physmap + off,
                phantom_mem::PhysAddr::new(off),
                PageFlags::KERNEL_DATA,
            );
            off += HUGE_PAGE_SIZE;
        }

        // User runtime: syscall stub, fault handler, stack.
        let mut stub = Assembler::new(USER_STUB);
        stub.push(Inst::Syscall);
        stub.push(Inst::Halt);
        machine
            .load_blob(&stub.finish()?, PageFlags::USER_TEXT)
            .map_err(SystemError::Machine)?;
        let mut handler = Assembler::new(USER_FAULT_HANDLER);
        handler.push(Inst::Halt);
        machine
            .load_blob(&handler.finish()?, PageFlags::USER_TEXT)
            .map_err(SystemError::Machine)?;
        machine
            .map_range(
                VirtAddr::new(USER_STACK_BASE),
                USER_STACK_SIZE,
                PageFlags::USER_DATA,
            )
            .map_err(SystemError::Machine)?;
        machine.set_fault_handler(Some(VirtAddr::new(USER_FAULT_HANDLER)));

        Ok(System {
            machine,
            layout,
            image,
            module,
            secret,
            boot_seed: seed,
            kpti: true,
        })
    }

    /// Boot through the process-global boot-image cache: same contract
    /// and result as [`System::new`], but machine construction, kernel
    /// assembly and blob loading are paid once per `(profile,
    /// phys_bytes)` — later boots clone the cached template (frames
    /// shared copy-on-write) and rebase its page table to the seed's
    /// KASLR layout (see [`crate::boot_cache`]). Set
    /// `PHANTOM_BOOT_CACHE=0` to fall back to a full boot per call.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if kernel assembly or loading fails.
    pub fn new_cached(
        profile: UarchProfile,
        phys_bytes: u64,
        seed: u64,
    ) -> Result<System, SystemError> {
        let enabled = std::env::var("PHANTOM_BOOT_CACHE").map_or(true, |v| v != "0");
        if enabled {
            crate::boot_cache::global().boot(profile, phys_bytes, seed)
        } else {
            System::new(profile, phys_bytes, seed)
        }
    }

    /// Assemble a system from parts the boot cache prepared.
    pub(crate) fn assemble(
        machine: Machine,
        layout: KaslrLayout,
        image: KernelImage,
        module: KernelModule,
        secret: Vec<u8>,
        boot_seed: u64,
    ) -> System {
        System {
            machine,
            layout,
            image,
            module,
            secret,
            boot_seed,
            kpti: true,
        }
    }

    /// Whether KPTI-style TLB separation is active (default: on, like
    /// the paper's hardened baseline). Phantom is KPTI-oblivious — the
    /// BTB is trained by the *branch*, not by touching kernel mappings —
    /// but the flag models the context-switch TLB cost.
    pub fn kpti(&self) -> bool {
        self.kpti
    }

    /// Toggle KPTI (affects syscall-boundary TLB flushes only).
    pub fn set_kpti(&mut self, on: bool) {
        self.kpti = on;
    }

    /// Reboot: fresh KASLR, cold caches and predictors. Charges the
    /// reboot cost to wall-clock accounting via a fixed cycle budget.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the new kernel fails to load.
    pub fn reboot(&mut self, seed: u64) -> Result<(), SystemError> {
        let profile = self.machine.profile().clone();
        let phys = self.machine.phys().capacity();
        *self = System::new(profile, phys, seed)?;
        Ok(())
    }

    // ----- accessors ---------------------------------------------------

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The underlying machine, mutably.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Ground-truth KASLR layout (verification only).
    pub fn layout(&self) -> KaslrLayout {
        self.layout
    }

    /// Ground-truth kernel image addresses (verification only; attacks
    /// must find these via side channels).
    pub fn image(&self) -> &KernelImage {
        &self.image
    }

    /// The loaded module's addresses (module space is unrandomized in
    /// this model, so these are attacker-known).
    pub fn module(&self) -> &KernelModule {
        &self.module
    }

    /// The planted secret (verification only).
    pub fn secret(&self) -> &[u8] {
        &self.secret
    }

    /// The boot seed.
    pub fn boot_seed(&self) -> u64 {
        self.boot_seed
    }

    // ----- user-space operations ----------------------------------------

    /// Invoke a syscall from the user stub with up to three arguments.
    /// Returns every transient report produced along the way (training
    /// effects, phantom windows inside the kernel, …).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Machine`] on simulator errors (not on
    /// architectural page faults, which the user fault handler absorbs).
    pub fn syscall(&mut self, nr: u64, args: &[u64]) -> Result<Vec<TransientReport>, SystemError> {
        self.machine.set_level(PrivilegeLevel::User);
        self.machine.set_reg(Reg::R0, nr);
        for (i, a) in args.iter().enumerate().take(3) {
            let reg = [Reg::R1, Reg::R2, Reg::R3][i];
            self.machine.set_reg(reg, *a);
        }
        self.machine
            .set_reg(Reg::SP, USER_STACK_BASE + USER_STACK_SIZE - 64);
        self.machine.set_pc(VirtAddr::new(USER_STUB));
        if self.kpti {
            // KPTI: the user<->kernel transition switches page tables,
            // losing user-ASID TLB entries (timing-only in this model).
            self.machine.tlb_mut().invalidate_asid(0);
            self.machine.add_cycles(300);
        }
        let (_, reports) = self.machine.run_collecting(10_000)?;
        Ok(reports)
    }

    /// `getpid()` — drives the Listing 1 path.
    ///
    /// # Errors
    ///
    /// See [`System::syscall`].
    pub fn getpid(&mut self) -> Result<Vec<TransientReport>, SystemError> {
        self.syscall(sysno::GETPID, &[])
    }

    /// `readv(fd, iov)` — drives the Listing 2 path with `iov` (the
    /// second argument) flowing into `R12`.
    ///
    /// # Errors
    ///
    /// See [`System::syscall`].
    pub fn readv(&mut self, fd: u64, iov: u64) -> Result<Vec<TransientReport>, SystemError> {
        self.syscall(sysno::READV, &[fd, iov])
    }

    /// Map a user page at `va` if not already mapped (attacker memory).
    ///
    /// Pages that already have *any* mapping — including supervisor
    /// mappings, which the fault-and-catch training in
    /// [`System::train_user_branch`] deliberately targets — are left
    /// untouched, unlike the strict
    /// [`Machine::map_range`](phantom_pipeline::Machine::map_range),
    /// which rejects flag mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Machine`] if physical memory runs out.
    pub fn map_user(
        &mut self,
        va: VirtAddr,
        len: u64,
        flags: PageFlags,
    ) -> Result<(), SystemError> {
        let start = va.page_base();
        let end = (va + len + PAGE_SIZE - 1).page_base();
        let mut page = start;
        while page < end {
            if self.machine.page_table().flags_of(page).is_none() {
                self.machine.map_range(page, PAGE_SIZE, flags)?;
            }
            page = page + PAGE_SIZE;
        }
        Ok(())
    }

    /// Train the BTB from user mode: place a branch of `kind` exactly at
    /// `source`, point it at `target`, and execute it once. Branches to
    /// inaccessible targets page-fault — and are caught — but still
    /// deposit the BTB entry (the §6.2 fault-and-catch technique).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Machine`] on simulator errors.
    pub fn train_user_branch(
        &mut self,
        source: VirtAddr,
        kind: BranchKind,
        target: VirtAddr,
    ) -> Result<(), SystemError> {
        self.map_user(
            source.page_base(),
            4096 + 32,
            PageFlags::USER_TEXT | PageFlags::WRITE,
        )?;
        let inst = match kind {
            BranchKind::Indirect => Inst::JmpInd { src: Reg::R11 },
            BranchKind::CallInd => Inst::CallInd { src: Reg::R11 },
            BranchKind::Direct | BranchKind::Call | BranchKind::Cond => {
                // Direct kinds need an encodable displacement; the BTB
                // stores it PC-relative anyway.
                let disp = target.raw().wrapping_sub(source.raw() + 5) as i64;
                let disp = i32::try_from(disp).unwrap_or(0x7fff_0000);
                match kind {
                    BranchKind::Direct => Inst::Jmp { disp },
                    BranchKind::Call => Inst::Call { disp },
                    _ => Inst::Jcc {
                        cond: phantom_isa::Cond::Eq,
                        disp: disp - 1,
                    },
                }
            }
            BranchKind::Ret => Inst::Ret,
            BranchKind::NotBranch => Inst::Nop,
        };
        let mut bytes = Vec::new();
        phantom_isa::encode::encode_into(&inst, &mut bytes).expect("encodable");
        bytes.push(0xF4); // hlt after the branch
        self.machine.poke(source, &bytes);

        self.machine.set_level(PrivilegeLevel::User);
        self.machine.set_reg(Reg::R11, target.raw());
        if kind == BranchKind::Cond {
            // Make the conditional actually taken (ZF set via cmp of
            // equal registers) and train the direction predictor.
            self.machine.set_reg(Reg::R9, 1);
            self.machine.set_reg(Reg::R10, 1);
            let mut cmp = Vec::new();
            phantom_isa::encode::encode_into(
                &Inst::Cmp {
                    a: Reg::R9,
                    b: Reg::R10,
                },
                &mut cmp,
            )
            .expect("encodable");
            // Execute the cmp from a scratch location just before source
            // is awkward; set flags directly by running cmp at the stub
            // page. Simplest: poke cmp+branch sequence? The branch must
            // sit exactly at `source`, so run the cmp from a scratch page.
            let scratch = VirtAddr::new(USER_STUB + 0x100);
            self.map_user(scratch, 16, PageFlags::USER_TEXT | PageFlags::WRITE)?;
            let mut seq = cmp;
            seq.push(0xF4);
            self.machine.poke(scratch, &seq);
            self.machine.set_pc(scratch);
            self.machine.run(4)?;
        }
        if kind == BranchKind::Ret {
            // Plant the "architectural" return target on the stack so the
            // trained entry records it.
            let sp = USER_STACK_BASE + USER_STACK_SIZE - 256;
            self.machine.set_reg(Reg::SP, sp);
            self.machine.poke_u64(VirtAddr::new(sp), target.raw());
        } else {
            self.machine
                .set_reg(Reg::SP, USER_STACK_BASE + USER_STACK_SIZE - 64);
        }
        self.machine.set_pc(source);
        self.machine.run(4)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FAKE_PID;

    fn boot(seed: u64) -> System {
        System::new(UarchProfile::zen2(), 1 << 30, seed).expect("boot")
    }

    #[test]
    fn getpid_returns_the_fake_pid() {
        let mut sys = boot(1);
        sys.getpid().unwrap();
        assert_eq!(sys.machine().reg(Reg::R1), FAKE_PID);
        assert_eq!(sys.machine().level(), PrivilegeLevel::User);
    }

    #[test]
    fn readv_flows_arg2_into_r12() {
        let mut sys = boot(2);
        sys.readv(3, 0xdead_beef).unwrap();
        // After the syscall, R12 was loaded from R2 inside the kernel.
        assert_eq!(sys.machine().reg(Reg::R12), 0xdead_beef);
    }

    #[test]
    fn kaslr_varies_across_boots() {
        let slots: std::collections::HashSet<u64> = (0..20)
            .map(|s| {
                System::new(UarchProfile::zen3(), 1 << 30, s)
                    .unwrap()
                    .layout()
                    .image_slot
            })
            .collect();
        assert!(slots.len() > 10);
    }

    #[test]
    fn physmap_mirrors_physical_memory() {
        let mut sys = boot(3);
        let physmap = sys.layout().physmap_base();
        // Write through physmap (supervisor data access) and read the
        // physical byte directly.
        sys.machine_mut().poke_u64(physmap + 0x1234, 0x7777);
        assert_eq!(
            sys.machine()
                .phys()
                .read_u64(phantom_mem::PhysAddr::new(0x1234)),
            0x7777
        );
    }

    #[test]
    fn physmap_is_not_executable() {
        let sys = boot(4);
        let physmap = sys.layout().physmap_base();
        let err = sys
            .machine()
            .page_table()
            .translate(
                physmap,
                phantom_mem::AccessKind::Execute,
                PrivilegeLevel::Supervisor,
            )
            .unwrap_err();
        assert_eq!(err.reason, phantom_mem::FaultReason::NotExecutable);
    }

    #[test]
    fn user_cannot_read_kernel_image() {
        let sys = boot(5);
        let err = sys
            .machine()
            .page_table()
            .translate(
                sys.image().listing1_nop,
                phantom_mem::AccessKind::Read,
                PrivilegeLevel::User,
            )
            .unwrap_err();
        assert_eq!(err.reason, phantom_mem::FaultReason::Privilege);
    }

    #[test]
    fn module_read_data_in_bounds_works() {
        let mut sys = boot(6);
        // Byte-indexed like the paper's `array[user_index]`: index 8 hits
        // the second u64 entry (0x11) at its low byte.
        sys.syscall(sysno::MODULE_READ_DATA, &[8, 0]).unwrap();
        assert_eq!(sys.machine().reg(Reg::R3), 0x11);
    }

    #[test]
    fn module_read_data_out_of_bounds_is_rejected_architecturally() {
        let mut sys = boot(7);
        sys.machine_mut().set_reg(Reg::R3, 0);
        sys.syscall(sysno::MODULE_READ_DATA, &[999, 0]).unwrap();
        // The bounds check architecturally rejects: R3 not loaded from
        // array[999].
        assert_eq!(sys.machine().reg(Reg::R3), 0);
    }

    #[test]
    fn train_user_branch_deposits_cross_privilege_entry() {
        let mut sys = System::new(UarchProfile::zen3(), 1 << 30, 8).unwrap();
        let k = sys.image().listing1_nop;
        // A user address aliasing K under the Zen 3 functions.
        let u = VirtAddr::new(k.raw() ^ 0xffff_bff8_0000_0000);
        sys.train_user_branch(u, BranchKind::Indirect, VirtAddr::new(0x30_0000))
            .unwrap();
        // The BTB now serves a prediction at the kernel address.
        let hit = sys.machine().bpu().btb().lookup(k).expect("aliased entry");
        assert_eq!(hit.kind, BranchKind::Indirect);
        assert_eq!(hit.target, Some(VirtAddr::new(0x30_0000)));
    }

    #[test]
    fn secret_is_planted_and_seed_dependent() {
        let a = boot(100);
        let b = boot(101);
        assert_eq!(a.secret().len(), SECRET_LEN);
        assert_ne!(a.secret(), b.secret());
        // And actually resident in kernel memory.
        let in_mem = a.machine().peek(a.module().secret, 16);
        assert_eq!(&in_mem, &a.secret()[..16]);
    }

    #[test]
    fn reboot_rerandomizes() {
        let mut sys = boot(9);
        let before = sys.layout();
        sys.reboot(10).unwrap();
        assert_ne!(sys.layout(), before);
        assert!(sys.machine().bpu().btb().is_empty(), "predictors cold");
    }
}

#[cfg(test)]
mod kpti_tests {
    use super::*;

    #[test]
    fn kpti_defaults_on_and_charges_transition_cost() {
        let mut on = System::new(UarchProfile::zen3(), 1 << 28, 60).unwrap();
        assert!(on.kpti());
        let mut off = System::new(UarchProfile::zen3(), 1 << 28, 60).unwrap();
        off.set_kpti(false);
        let c0 = on.machine().cycles();
        on.getpid().unwrap();
        let with_kpti = on.machine().cycles() - c0;
        let c0 = off.machine().cycles();
        off.getpid().unwrap();
        let without = off.machine().cycles() - c0;
        assert!(with_kpti > without, "{with_kpti} vs {without}");
    }

    #[test]
    fn phantom_training_is_kpti_oblivious() {
        // The §6.2 training never touches kernel mappings: the BTB entry
        // lands identically with KPTI on or off.
        for kpti in [true, false] {
            let mut sys = System::new(UarchProfile::zen3(), 1 << 28, 61).unwrap();
            sys.set_kpti(kpti);
            let k = sys.image().listing1_nop;
            let u = VirtAddr::new(k.raw() ^ 0xffff_bff8_0000_0000);
            sys.train_user_branch(u, BranchKind::Indirect, VirtAddr::new(0x30_0000))
                .unwrap();
            assert!(sys.machine().bpu().btb().lookup(k).is_some(), "kpti={kpti}");
        }
    }

    #[test]
    fn unknown_syscall_returns_cleanly() {
        let mut sys = System::new(UarchProfile::zen2(), 1 << 28, 62).unwrap();
        sys.syscall(9999, &[1, 2, 3]).unwrap();
        assert_eq!(
            sys.machine().level(),
            PrivilegeLevel::User,
            "-ENOSYS path sysrets"
        );
    }
}
