//! KASLR layout: randomized kernel image and physmap placement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phantom_mem::VirtAddr;

/// Number of possible kernel image locations (§7.1, citing TagBleed).
pub const KERNEL_IMAGE_SLOTS: u64 = 488;
/// Lowest kernel image base.
pub const KERNEL_IMAGE_MIN: u64 = 0xffff_ffff_8000_0000;
/// Kernel image slot alignment (2 MiB).
pub const KERNEL_IMAGE_ALIGN: u64 = 0x20_0000;

/// Number of possible physmap locations (§7.2).
pub const PHYSMAP_SLOTS: u64 = 25_600;
/// Lowest physmap base.
pub const PHYSMAP_MIN: u64 = 0xffff_8880_0000_0000;
/// Physmap slot alignment (1 GiB).
pub const PHYSMAP_ALIGN: u64 = 0x4000_0000;

/// A randomized address-space layout — what KASLR chose at "boot".
///
/// # Examples
///
/// ```
/// use phantom_kernel::KaslrLayout;
/// let l = KaslrLayout::randomize(7);
/// assert!(l.image_slot < 488);
/// assert!(l.physmap_slot < 25_600);
/// assert_eq!(l, KaslrLayout::randomize(7), "seeded: reproducible boots");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KaslrLayout {
    /// Which of the 488 image slots was chosen.
    pub image_slot: u64,
    /// Which of the 25 600 physmap slots was chosen.
    pub physmap_slot: u64,
}

impl KaslrLayout {
    /// Randomize a layout from a boot seed.
    pub fn randomize(seed: u64) -> KaslrLayout {
        let mut rng = StdRng::seed_from_u64(seed);
        KaslrLayout {
            image_slot: rng.gen_range(0..KERNEL_IMAGE_SLOTS),
            physmap_slot: rng.gen_range(0..PHYSMAP_SLOTS),
        }
    }

    /// A fixed layout (tests that need known addresses).
    pub fn fixed(image_slot: u64, physmap_slot: u64) -> KaslrLayout {
        assert!(image_slot < KERNEL_IMAGE_SLOTS);
        assert!(physmap_slot < PHYSMAP_SLOTS);
        KaslrLayout {
            image_slot,
            physmap_slot,
        }
    }

    /// The kernel image base address.
    pub fn image_base(&self) -> VirtAddr {
        VirtAddr::new(KERNEL_IMAGE_MIN + self.image_slot * KERNEL_IMAGE_ALIGN)
    }

    /// The physmap base address: `physmap_base + PA` maps physical
    /// address `PA`.
    pub fn physmap_base(&self) -> VirtAddr {
        VirtAddr::new(PHYSMAP_MIN + self.physmap_slot * PHYSMAP_ALIGN)
    }

    /// The image base for an arbitrary candidate slot (attack search
    /// space enumeration).
    pub fn candidate_image_base(slot: u64) -> VirtAddr {
        VirtAddr::new(KERNEL_IMAGE_MIN + slot * KERNEL_IMAGE_ALIGN)
    }

    /// The physmap base for an arbitrary candidate slot.
    pub fn candidate_physmap_base(slot: u64) -> VirtAddr {
        VirtAddr::new(PHYSMAP_MIN + slot * PHYSMAP_ALIGN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_stay_in_range_and_vary() {
        let mut image_seen = std::collections::HashSet::new();
        for seed in 0..200 {
            let l = KaslrLayout::randomize(seed);
            assert!(l.image_slot < KERNEL_IMAGE_SLOTS);
            assert!(l.physmap_slot < PHYSMAP_SLOTS);
            image_seen.insert(l.image_slot);
        }
        assert!(image_seen.len() > 100, "entropy actually used");
    }

    #[test]
    fn bases_are_aligned_kernel_half_addresses() {
        let l = KaslrLayout::randomize(3);
        assert!(l.image_base().is_kernel_half());
        assert!(l.image_base().is_aligned(KERNEL_IMAGE_ALIGN));
        assert!(l.physmap_base().is_kernel_half());
        assert!(l.physmap_base().is_aligned(PHYSMAP_ALIGN));
    }

    #[test]
    fn candidate_enumeration_covers_the_real_base() {
        let l = KaslrLayout::randomize(99);
        let found = (0..KERNEL_IMAGE_SLOTS)
            .map(KaslrLayout::candidate_image_base)
            .any(|c| c == l.image_base());
        assert!(found);
    }

    #[test]
    #[should_panic]
    fn fixed_rejects_out_of_range() {
        KaslrLayout::fixed(KERNEL_IMAGE_SLOTS, 0);
    }
}
