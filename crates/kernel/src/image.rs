//! The kernel image: syscall dispatcher plus the paper's gadgets at
//! their published image offsets.
//!
//! Listing 1 (`__task_pid_nr_ns`, offset `0xf6520`): a multi-byte nop
//! followed by frame setup — the `getpid()` injection point. Listing 2
//! (`__fdget_pos`, offset `0x41db60`): frame setup ending in a direct
//! `call` — the `readv()` injection point, reached with the attacker
//! controlling `R12` from the second syscall argument. Listing 3
//! (offset `0x41da52`): the one-load disclosure gadget
//! `mov r12, [r12+0xbe0]`.

use phantom_isa::asm::{AsmError, Assembler, Blob};
use phantom_isa::{Inst, Reg};
use phantom_mem::VirtAddr;

use crate::sysno;

/// Image offset of the Listing 1 nop (`__task_pid_nr_ns`).
pub const LISTING1_OFFSET: u64 = 0xf6520;
/// Image offset of `__fdget_pos` (Listing 2).
pub const LISTING2_OFFSET: u64 = 0x41db60;
/// Image offset of the direct `call` inside Listing 2 that the physmap
/// attack confuses with an injected `jmp*` prediction.
pub const LISTING2_CALL_OFFSET: u64 = LISTING2_OFFSET + 18;
/// Image offset of the Listing 3 disclosure gadget
/// (`mov r12, [r12+0xbe0]`).
pub const LISTING3_OFFSET: u64 = 0x41da52;
/// Displacement used by the Listing 3 load.
pub const LISTING3_DISP: i32 = 0xbe0;
/// Total image size in bytes (text, rounded to a page).
pub const IMAGE_SIZE: u64 = 0x42_0000;

/// The PID `getpid()` returns (in `R1`).
pub const FAKE_PID: u64 = 4242;

/// Virtual addresses of interesting points in a loaded kernel image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelImage {
    /// Image base (KASLR-randomized).
    pub base: VirtAddr,
    /// The syscall entry point (dispatcher).
    pub entry: VirtAddr,
    /// The Listing 1 nop inside the `getpid()` path.
    pub listing1_nop: VirtAddr,
    /// The Listing 2 `call` inside the `readv()` path.
    pub listing2_call: VirtAddr,
    /// The Listing 3 disclosure gadget.
    pub listing3_gadget: VirtAddr,
    /// Kernel module dispatch target (patched in by the system when a
    /// module is loaded; the dispatcher jumps here for module syscalls).
    pub module_trampoline: VirtAddr,
}

impl KernelImage {
    /// Assemble the image for a given base. Returns the blob and the
    /// address map.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if the fixed offsets collide (a bug, not a
    /// runtime condition).
    pub fn build(base: VirtAddr, module_entry: VirtAddr) -> Result<(Blob, KernelImage), AsmError> {
        let mut a = Assembler::new(base.raw());

        // --- Syscall dispatcher at the image base. -------------------
        a.label("entry");
        // getpid?
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: sysno::GETPID,
        });
        a.push(Inst::Cmp {
            a: Reg::R0,
            b: Reg::R7,
        });
        a.jcc_cond(phantom_isa::Cond::Eq, "sys_getpid");
        // readv?
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: sysno::READV,
        });
        a.push(Inst::Cmp {
            a: Reg::R0,
            b: Reg::R7,
        });
        a.jcc_cond(phantom_isa::Cond::Eq, "sys_readv");
        // module read_data?
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: sysno::MODULE_READ_DATA,
        });
        a.push(Inst::Cmp {
            a: Reg::R0,
            b: Reg::R7,
        });
        a.jcc_cond(phantom_isa::Cond::Eq, "module_trampoline");
        // module probe?
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: sysno::MODULE_PROBE,
        });
        a.push(Inst::Cmp {
            a: Reg::R0,
            b: Reg::R7,
        });
        a.jcc_cond(phantom_isa::Cond::Eq, "module_trampoline");
        a.push(Inst::Sysret); // -ENOSYS

        // Module trampoline: an indirect jump to the loaded module (the
        // module base is not part of the image, so it is register-fed).
        a.label("module_trampoline");
        a.push(Inst::MovImm {
            dst: Reg::R7,
            imm: module_entry.raw(),
        });
        a.push(Inst::JmpInd { src: Reg::R7 });

        // --- Listing 1: __task_pid_nr_ns at 0xf6520. ------------------
        // 1: nop DWORD PTR [rax+rax*1+0x0]   <- injection point
        // 2: push rbp
        // 3: mov rbp, rsp
        a.org(base.raw() + LISTING1_OFFSET);
        a.label("sys_getpid");
        a.push(Inst::NopN { len: 5 }); // the 5-byte nop of Listing 1
        a.push(Inst::NopN { len: 3 }); // frame setup stand-ins
        a.push(Inst::NopN { len: 3 });
        a.push(Inst::MovImm {
            dst: Reg::R1,
            imm: FAKE_PID,
        });
        a.push(Inst::Sysret);

        // --- Listing 3: disclosure gadget at 0x41da52. ----------------
        // mov r12, QWORD PTR [r12+0xbe0]
        a.org(base.raw() + LISTING3_OFFSET);
        a.label("listing3_gadget");
        a.push(Inst::Load {
            dst: Reg::R12,
            base: Reg::R12,
            disp: LISTING3_DISP,
        });
        a.push(Inst::Ret);

        // --- readv() path: R12 <- second argument, then __fdget_pos. --
        a.org(base.raw() + LISTING2_OFFSET - 0x20);
        a.label("sys_readv");
        a.push(Inst::MovReg {
            dst: Reg::R12,
            src: Reg::R2,
        }); // RSI -> R12

        // --- Listing 2: __fdget_pos at 0x41db60. ----------------------
        // 1: nop DWORD PTR [rax+rax*1+0x0]
        // 2: push rbp
        // 3: mov esi, 0x4000
        // 4: mov rbp, rsp
        // 5: sub rsp, 0x8
        // 6: call …                           <- injection point (+18)
        a.org(base.raw() + LISTING2_OFFSET);
        a.push(Inst::NopN { len: 5 });
        a.push(Inst::MovImm {
            dst: Reg::R6,
            imm: 0x4000,
        });
        a.push(Inst::NopN { len: 3 });
        debug_assert_eq!(5 + 10 + 3, LISTING2_CALL_OFFSET - LISTING2_OFFSET);
        a.call("fdget_inner");
        a.push(Inst::Sysret);
        a.label("fdget_inner");
        a.push(Inst::NopN { len: 3 });
        a.push(Inst::Ret);

        // Spare executable kernel text beyond the gadgets: fetch-probe
        // targets for the covert channel pick addresses in here.
        a.org(base.raw() + IMAGE_SIZE - 0x40);
        a.label("image_end");
        a.push(Inst::Alu {
            op: phantom_isa::inst::AluOp::Xor,
            dst: Reg::R7,
            src: Reg::R7,
        });
        a.push(Inst::Sysret);

        let blob = a.finish()?;
        let image = KernelImage {
            base,
            entry: VirtAddr::new(blob.addr("entry")),
            listing1_nop: VirtAddr::new(base.raw() + LISTING1_OFFSET),
            listing2_call: VirtAddr::new(base.raw() + LISTING2_CALL_OFFSET),
            listing3_gadget: VirtAddr::new(blob.addr("listing3_gadget")),
            module_trampoline: VirtAddr::new(blob.addr("module_trampoline")),
        };
        Ok((blob, image))
    }

    /// The same address map relocated to `new_base`: every field keeps
    /// its offset from the image base.
    ///
    /// Sound because the image blob itself is position-independent —
    /// all its branches encode `rel32` displacements and the only
    /// absolute immediate is the module entry, and module space is
    /// unrandomized — so relocating the *addresses* without touching
    /// the *bytes* yields exactly what [`KernelImage::build`] at
    /// `new_base` would (see `rebased_map_equals_a_fresh_build`). The
    /// boot-image cache uses this to stamp out per-seed systems from
    /// one canonical assembly.
    pub fn rebased(&self, new_base: VirtAddr) -> KernelImage {
        let shift = |va: VirtAddr| new_base + (va - self.base);
        KernelImage {
            base: new_base,
            entry: shift(self.entry),
            listing1_nop: shift(self.listing1_nop),
            listing2_call: shift(self.listing2_call),
            listing3_gadget: shift(self.listing3_gadget),
            module_trampoline: shift(self.module_trampoline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_isa::decode::decode;

    fn build() -> (Blob, KernelImage) {
        KernelImage::build(
            VirtAddr::new(0xffff_ffff_8000_0000),
            VirtAddr::new(0xffff_ffff_c000_0000),
        )
        .expect("image assembles")
    }

    #[test]
    fn gadgets_sit_at_paper_offsets() {
        let (blob, img) = build();
        assert_eq!(img.listing1_nop - img.base, LISTING1_OFFSET);
        assert_eq!(img.listing2_call - img.base, LISTING2_CALL_OFFSET);
        assert_eq!(img.listing3_gadget - img.base, LISTING3_OFFSET);
        assert_eq!(blob.base, img.base.raw());
    }

    #[test]
    fn listing1_bytes_decode_to_a_multibyte_nop() {
        let (blob, img) = build();
        let off = (img.listing1_nop - img.base) as usize;
        let (inst, len) = decode(&blob.bytes[off..]).unwrap();
        assert_eq!(inst, Inst::NopN { len: 5 });
        assert_eq!(len, 5);
    }

    #[test]
    fn listing2_call_is_a_direct_call() {
        let (blob, img) = build();
        let off = (img.listing2_call - img.base) as usize;
        let (inst, _) = decode(&blob.bytes[off..]).unwrap();
        assert!(matches!(inst, Inst::Call { .. }), "got {inst}");
        // It targets fdget_inner.
        let target = inst.direct_target(img.listing2_call.raw()).unwrap();
        assert_eq!(target, blob.addr("fdget_inner"));
    }

    #[test]
    fn listing3_is_the_one_load_gadget() {
        let (blob, img) = build();
        let off = (img.listing3_gadget - img.base) as usize;
        let (inst, _) = decode(&blob.bytes[off..]).unwrap();
        assert_eq!(
            inst,
            Inst::Load {
                dst: Reg::R12,
                base: Reg::R12,
                disp: LISTING3_DISP
            }
        );
    }

    #[test]
    fn image_fits_its_declared_size() {
        let (blob, _) = build();
        assert!(blob.bytes.len() as u64 <= IMAGE_SIZE);
        assert!(
            blob.bytes.len() as u64 > LISTING2_OFFSET,
            "gadgets included"
        );
    }

    #[test]
    fn rebased_images_keep_relative_offsets() {
        let base2 = VirtAddr::new(0xffff_ffff_8000_0000 + 37 * 0x20_0000);
        let (_, img2) = KernelImage::build(base2, VirtAddr::new(0xffff_ffff_c000_0000)).unwrap();
        assert_eq!(img2.listing1_nop - img2.base, LISTING1_OFFSET);
        assert_eq!(img2.base, base2);
    }

    #[test]
    fn rebased_map_equals_a_fresh_build() {
        let module_entry = VirtAddr::new(0xffff_ffff_c000_0000);
        let (blob0, img0) = build();
        let base2 = VirtAddr::new(0xffff_ffff_8000_0000 + 123 * 0x20_0000);
        let (blob2, img2) = KernelImage::build(base2, module_entry).unwrap();
        assert_eq!(img0.rebased(base2), img2);
        // And the blob bytes are position-independent, which is what
        // makes relocating the map without reassembling sound.
        assert_eq!(blob0.bytes, blob2.bytes);
    }
}
